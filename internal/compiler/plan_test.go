package compiler

import (
	"strings"
	"testing"

	"repro/internal/spec"
	"repro/internal/testlang"
)

func TestKindOfOpenACC(t *testing.T) {
	cases := []struct {
		name string
		want DirKind
	}{
		{"parallel", KindComputeBlock},
		{"kernels", KindComputeBlock},
		{"serial", KindComputeBlock},
		{"parallel loop", KindComputeLoop},
		{"kernels loop", KindComputeLoop},
		{"loop", KindLoop},
		{"data", KindData},
		{"enter data", KindEnterData},
		{"exit data", KindExitData},
		{"update", KindUpdate},
		{"atomic", KindAtomic},
		{"wait", KindNoop},
		{"routine", KindNoop},
	}
	for _, c := range cases {
		if got := kindOf(spec.OpenACC, c.name); got != c.want {
			t.Errorf("kindOf(ACC, %q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestKindOfOpenMP(t *testing.T) {
	cases := []struct {
		name string
		want DirKind
	}{
		{"parallel", KindHostParallel},
		{"parallel for", KindHostLoop},
		{"for", KindLoop},
		{"simd", KindLoop},
		{"distribute", KindLoop},
		{"target", KindComputeBlock},
		{"target teams", KindComputeBlock},
		{"target teams distribute parallel for", KindComputeLoop},
		{"teams distribute", KindComputeLoop},
		{"target data", KindData},
		{"target enter data", KindEnterData},
		{"target exit data", KindExitData},
		{"target update", KindUpdate},
		{"atomic", KindAtomic},
		{"critical", KindCritical},
		{"single", KindOnce},
		{"master", KindOnce},
		{"sections", KindInline},
		{"task", KindInline},
		{"barrier", KindNoop},
	}
	for _, c := range cases {
		if got := kindOf(spec.OpenMP, c.name); got != c.want {
			t.Errorf("kindOf(OMP, %q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestIsDeviceClassification(t *testing.T) {
	if !KindComputeLoop.IsDevice(spec.OpenACC, "parallel loop") {
		t.Error("ACC parallel loop should be a device construct")
	}
	if KindHostLoop.IsDevice(spec.OpenMP, "parallel for") {
		t.Error("OMP parallel for is a host construct")
	}
	if !KindComputeLoop.IsDevice(spec.OpenMP, "target teams distribute parallel for") {
		t.Error("OMP target combined construct should be a device construct")
	}
	if !KindComputeBlock.IsDevice(spec.OpenMP, "teams") {
		t.Error("OMP teams executes in the device data environment")
	}
}

func TestClauseDataModes(t *testing.T) {
	cases := []struct {
		dir, clause string
		want        DataMode
		isData      bool
	}{
		{"data", "copyin", MCopyIn, true},
		{"data", "copyout", MCopyOut, true},
		{"data", "copy", MCopy, true},
		{"data", "create", MCreate, true},
		{"data", "present", MPresent, true},
		{"exit data", "delete", MDelete, true},
		{"update", "host", MUpdateHost, true},
		{"update", "self", MUpdateHost, true},
		{"update", "device", MUpdateDevice, true},
		{"target update", "to", MUpdateDevice, true},
		{"target update", "from", MUpdateHost, true},
		{"data", "no_create", MIgnore, true},
		{"host_data", "use_device", MIgnore, true},
		{"parallel", "num_gangs", 0, false},
		{"target", "device", 0, false}, // device(n) selects a device, moves nothing
	}
	for _, c := range cases {
		got, isData := clauseDataMode(spec.OpenACC, c.dir, c.clause)
		if isData != c.isData {
			t.Errorf("clauseDataMode(%s,%s) isData = %v, want %v", c.dir, c.clause, isData, c.isData)
			continue
		}
		if isData && got != c.want {
			t.Errorf("clauseDataMode(%s,%s) = %v, want %v", c.dir, c.clause, got, c.want)
		}
	}
}

func TestMapTypeModes(t *testing.T) {
	cases := map[string]DataMode{
		"to": MCopyIn, "from": MCopyOut, "tofrom": MCopy,
		"alloc": MCreate, "release": MDelete, "delete": MDelete,
	}
	for mt, want := range cases {
		if got := mapTypeMode(mt); got != want {
			t.Errorf("mapTypeMode(%q) = %v, want %v", mt, got, want)
		}
	}
}

func TestDataModeStrings(t *testing.T) {
	for _, m := range []DataMode{MCopyIn, MCopyOut, MCopy, MCreate, MPresent, MDelete, MUpdateHost, MUpdateDevice} {
		if m.String() == "?" || m.String() == "" {
			t.Errorf("DataMode %d has no name", m)
		}
	}
}

func TestPlanNumWorkersAndIf(t *testing.T) {
	src := `
int main() {
    int n = 100;
    int use_gpu = 1;
    int a[100];
#pragma acc parallel loop num_gangs(8) if(use_gpu) copy(a)
    for (int i = 0; i < n; i++) {
        a[i] = i;
    }
    return 0;
}
`
	res := NVCSim().Compile("t.c", src, testlang.LangC)
	if !res.OK {
		t.Fatalf("compile: %s", res.Stderr)
	}
	var plan *DirPlan
	for _, p := range res.Object.Plans {
		plan = p
	}
	if plan == nil {
		t.Fatal("no plan")
	}
	if plan.NumWorkers == nil {
		t.Error("num_gangs not lowered to NumWorkers")
	}
	if plan.If == nil {
		t.Error("if clause not lowered")
	}
}

func TestPlanAtomicKinds(t *testing.T) {
	for _, kind := range []string{"read", "write", "update", "capture"} {
		body := "x += 1;"
		if kind == "read" || kind == "capture" {
			body = "v = x;"
		}
		if kind == "write" {
			body = "x = 1;"
		}
		src := `
int main() {
    int x = 0, v = 0;
#pragma omp parallel
    {
#pragma omp atomic ` + kind + `
        ` + body + `
    }
    return v >= 0 ? 0 : 1;
}
`
		res := ClangSim().Compile("t.c", src, testlang.LangC)
		if !res.OK {
			t.Fatalf("atomic %s: %s", kind, res.Stderr)
		}
		found := false
		for ds, p := range res.Object.Plans {
			if ds.Dir.Name == "atomic" {
				found = true
				if p.AtomicKind != kind {
					t.Errorf("atomic %s lowered as %q", kind, p.AtomicKind)
				}
			}
		}
		if !found {
			t.Fatalf("atomic %s: plan missing", kind)
		}
	}
}

func TestFeatureDiagsListAllUses(t *testing.T) {
	src := `
int main() {
    int a[8];
    int b[8];
#pragma acc data no_create(a) attach(b)
    {
        a[0] = 1;
    }
    return 0;
}
`
	res := NVCSim().Compile("t.c", src, testlang.LangC)
	if res.OK {
		t.Fatal("unsupported clauses compiled")
	}
	if !strings.Contains(res.Stderr, "no_create") || !strings.Contains(res.Stderr, "attach") {
		t.Fatalf("stderr should name both unsupported clauses:\n%s", res.Stderr)
	}
}

func TestReferencePersonalityAcceptsEverything(t *testing.T) {
	src := `
int main() {
    double a[16][16];
    for (int i = 0; i < 16; i++)
        for (int j = 0; j < 16; j++)
            a[i][j] = i;
#pragma acc parallel loop tile(4, 4) copy(a)
    for (int i = 0; i < 16; i++) {
        for (int j = 0; j < 16; j++) {
            a[i][j] = a[i][j] + 1.0;
        }
    }
    return 0;
}
`
	if res := Reference(spec.OpenACC).Compile("t.c", src, testlang.LangC); !res.OK {
		t.Fatalf("reference personality rejected tile:\n%s", res.Stderr)
	}
	if res := NVCSim().Compile("t.c", src, testlang.LangC); res.OK {
		t.Fatal("nvc personality accepted tile")
	}
}

func TestCoveredVarsCollectsAllClauseKinds(t *testing.T) {
	src := `
#include <stdlib.h>
int main() {
    int n = 64;
    double *x = (double *)malloc(n * sizeof(double));
    double s = 0.0;
    double t = 0.0;
#pragma acc parallel loop copyin(x[0:n]) private(t) reduction(+:s)
    for (int i = 0; i < n; i++) {
        t = x[i];
        s += t;
    }
    return s >= 0 ? 0 : 1;
}
`
	res := NVCSim().Compile("t.c", src, testlang.LangC)
	if !res.OK {
		t.Fatalf("compile: %s", res.Stderr)
	}
	for ds, p := range res.Object.Plans {
		if ds.Dir.Name != "parallel loop" {
			continue
		}
		cov := coveredVars(p)
		for _, want := range []string{"x", "t", "s"} {
			if !cov[want] {
				t.Errorf("coveredVars missing %q", want)
			}
		}
	}
}
