package compiler

import (
	"strings"
	"testing"

	"repro/internal/testlang"
)

const validACC = `
#include <stdio.h>
#include <stdlib.h>
#define N 512

int main()
{
    double *a = (double *)malloc(N * sizeof(double));
    double *b = (double *)malloc(N * sizeof(double));
    double sum = 0.0;
    for (int i = 0; i < N; i++) {
        a[i] = i * 0.5;
        b[i] = i * 2.0;
    }
#pragma acc data copyin(a[0:N], b[0:N])
    {
#pragma acc parallel loop reduction(+:sum)
        for (int i = 0; i < N; i++) {
            sum += a[i] * b[i];
        }
    }
    double expect = 0.0;
    for (int i = 0; i < N; i++) {
        expect += a[i] * b[i];
    }
    if (sum - expect > 1e-6 || expect - sum > 1e-6) {
        printf("FAIL\n");
        return 1;
    }
    printf("PASS\n");
    free(a);
    free(b);
    return 0;
}
`

const validOMP = `
#include <stdio.h>
#include <stdlib.h>
#define N 256

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    int total = 0;
    for (int i = 0; i < N; i++) {
        a[i] = i;
    }
#pragma omp target teams distribute parallel for map(to: a[0:N]) reduction(+:total)
    for (int i = 0; i < N; i++) {
        total += a[i];
    }
    if (total != (N - 1) * N / 2) {
        printf("FAIL %d\n", total);
        return 1;
    }
    printf("PASS\n");
    free(a);
    return 0;
}
`

func compileACC(t *testing.T, src string) *Result {
	t.Helper()
	return NVCSim().Compile("test.c", src, testlang.LangC)
}

func compileOMP(t *testing.T, src string) *Result {
	t.Helper()
	return ClangSim().Compile("test.c", src, testlang.LangC)
}

func TestCompileValidACC(t *testing.T) {
	res := compileACC(t, validACC)
	if !res.OK {
		t.Fatalf("valid OpenACC test failed to compile:\n%s", res.Stderr)
	}
	if res.ReturnCode != 0 {
		t.Fatalf("return code = %d", res.ReturnCode)
	}
	if res.Object == nil {
		t.Fatal("no object produced")
	}
	if len(res.Object.Plans) != 2 {
		t.Fatalf("plans = %d, want 2", len(res.Object.Plans))
	}
}

func TestCompileValidOMP(t *testing.T) {
	res := compileOMP(t, validOMP)
	if !res.OK {
		t.Fatalf("valid OpenMP test failed to compile:\n%s", res.Stderr)
	}
}

func TestPlanContents(t *testing.T) {
	res := compileACC(t, validACC)
	if !res.OK {
		t.Fatal(res.Stderr)
	}
	var dataPlan, loopPlan *DirPlan
	for ds, p := range res.Object.Plans {
		switch ds.Dir.Name {
		case "data":
			dataPlan = p
		case "parallel loop":
			loopPlan = p
		}
	}
	if dataPlan == nil || loopPlan == nil {
		t.Fatal("expected plans not found")
	}
	if dataPlan.Kind != KindData {
		t.Fatalf("data kind = %v", dataPlan.Kind)
	}
	if len(dataPlan.Data) != 1 || dataPlan.Data[0].Mode != MCopyIn || len(dataPlan.Data[0].Sections) != 2 {
		t.Fatalf("data ops = %+v", dataPlan.Data)
	}
	if loopPlan.Kind != KindComputeLoop || !loopPlan.Device {
		t.Fatalf("loop plan = %+v", loopPlan)
	}
	if len(loopPlan.Reductions) != 1 || loopPlan.Reductions[0].Op != "+" || loopPlan.Reductions[0].Vars[0] != "sum" {
		t.Fatalf("reductions = %+v", loopPlan.Reductions)
	}
}

func TestMissingOpeningBracketFailsCompile(t *testing.T) {
	src := strings.Replace(validACC, "int main()\n{", "int main()\n", 1)
	res := compileACC(t, src)
	if res.OK {
		t.Fatal("missing opening brace compiled")
	}
	if res.ReturnCode != 1 {
		t.Fatalf("return code = %d, want 1", res.ReturnCode)
	}
	if !strings.Contains(res.Stderr, "error") {
		t.Fatalf("stderr lacks error text:\n%s", res.Stderr)
	}
}

func TestUndeclaredVariableFailsCompile(t *testing.T) {
	src := strings.Replace(validACC, "sum += a[i] * b[i];", "sum += a[i] * bogus_var[i];", 1)
	res := compileACC(t, src)
	if res.OK {
		t.Fatal("undeclared variable compiled")
	}
	if !strings.Contains(res.Stderr, "undeclared identifier") {
		t.Fatalf("stderr = %s", res.Stderr)
	}
}

func TestUnknownDirectiveFailsCompile(t *testing.T) {
	src := strings.Replace(validACC, "#pragma acc parallel loop reduction(+:sum)",
		"#pragma acc paralel loop reduction(+:sum)", 1)
	res := compileACC(t, src)
	if res.OK {
		t.Fatal("unknown directive compiled")
	}
	if !strings.Contains(res.Stderr, "unknown directive") {
		t.Fatalf("stderr = %s", res.Stderr)
	}
}

func TestWrongClauseFailsCompile(t *testing.T) {
	src := strings.Replace(validOMP, "map(to: a[0:N]) reduction(+:total)",
		"copyin(a[0:N]) reduction(+:total)", 1)
	res := compileOMP(t, src)
	if res.OK {
		t.Fatal("OpenACC clause on OpenMP directive compiled")
	}
	if !strings.Contains(res.Stderr, "invalid clause") {
		t.Fatalf("stderr = %s", res.Stderr)
	}
}

func TestBadReductionOpFailsCompile(t *testing.T) {
	src := strings.Replace(validACC, "reduction(+:sum)", "reduction(-:sum)", 1)
	res := compileACC(t, src)
	if res.OK {
		t.Fatal("invalid reduction operator compiled")
	}
}

func TestBadMapTypeFailsCompile(t *testing.T) {
	src := strings.Replace(validOMP, "map(to: a[0:N])", "map(copyin: a[0:N])", 1)
	res := compileOMP(t, src)
	if res.OK {
		t.Fatal("invalid map type compiled")
	}
	if !strings.Contains(res.Stderr, "invalid map type") {
		t.Fatalf("stderr = %s", res.Stderr)
	}
}

func TestUndeclaredClauseVarFailsCompile(t *testing.T) {
	src := strings.Replace(validACC, "copyin(a[0:N], b[0:N])", "copyin(a[0:N], ghost[0:N])", 1)
	res := compileACC(t, src)
	if res.OK {
		t.Fatal("undeclared clause variable compiled")
	}
	if !strings.Contains(res.Stderr, `"ghost"`) {
		t.Fatalf("stderr = %s", res.Stderr)
	}
}

func TestLoopDirectiveRequiresLoop(t *testing.T) {
	src := `
int main() {
    int x = 0;
#pragma acc parallel loop
    x = 1;
    return x - 1;
}
`
	res := compileACC(t, src)
	if res.OK {
		t.Fatal("loop directive without loop compiled")
	}
	if !strings.Contains(res.Stderr, "for loop expected") {
		t.Fatalf("stderr = %s", res.Stderr)
	}
}

func TestNonCanonicalLoopRejected(t *testing.T) {
	src := `
int main() {
    int n = 10;
#pragma omp parallel for
    for (int i = 0; ; i++) {
        if (i >= n) break;
    }
    return 0;
}
`
	res := compileOMP(t, src)
	if res.OK {
		t.Fatal("non-canonical loop compiled under work-sharing directive")
	}
}

func TestAtomicBodyValidation(t *testing.T) {
	good := `
int main() {
    int count = 0;
#pragma omp parallel
    {
#pragma omp atomic
        count += 1;
    }
    return 0;
}
`
	if res := compileOMP(t, good); !res.OK {
		t.Fatalf("valid atomic rejected:\n%s", res.Stderr)
	}
	bad := strings.Replace(good, "count += 1;", "if (count) { count += 1; }", 1)
	if res := compileOMP(t, bad); res.OK {
		t.Fatal("atomic over if statement compiled")
	}
}

func TestImplicitDeclPersonalities(t *testing.T) {
	src := `
#include <stdio.h>
int main() {
    int x = compute_something(42);
    printf("%d\n", x);
    return 0;
}
`
	// nvc model: hard error.
	if res := NVCSim().Compile("t.c", src, testlang.LangC); res.OK {
		t.Fatal("nvc personality accepted implicit function declaration")
	}
	// clang model: warning only; compiles.
	res := ClangSim().Compile("t.c", src, testlang.LangC)
	if !res.OK {
		t.Fatalf("clang personality rejected implicit declaration:\n%s", res.Stderr)
	}
	if !strings.Contains(res.Stderr, "implicit declaration") {
		t.Fatalf("expected warning, stderr = %q", res.Stderr)
	}
}

func TestUnsupportedFeatureGate(t *testing.T) {
	src := `
int main() {
    double a[64][64];
    for (int i = 0; i < 64; i++)
        for (int j = 0; j < 64; j++)
            a[i][j] = i + j;
#pragma acc parallel loop tile(8, 8) copy(a)
    for (int i = 0; i < 64; i++) {
        for (int j = 0; j < 64; j++) {
            a[i][j] = a[i][j] * 2.0;
        }
    }
    return 0;
}
`
	res := compileACC(t, src)
	if res.OK {
		t.Fatal("tile clause compiled under nvc personality (configured unsupported)")
	}
	if !strings.Contains(res.Stderr, "tile") {
		t.Fatalf("stderr = %s", res.Stderr)
	}
}

func TestMissingMainRejected(t *testing.T) {
	src := `int helper(int x) { return x; }`
	res := compileACC(t, src)
	if res.OK {
		t.Fatal("file without main linked")
	}
	if !strings.Contains(res.Stderr, "main") {
		t.Fatalf("stderr = %s", res.Stderr)
	}
}

func TestWrongArgCount(t *testing.T) {
	src := `
int helper(int a, int b) { return a + b; }
int main() { return helper(1); }
`
	res := compileACC(t, src)
	if res.OK {
		t.Fatal("wrong arg count compiled")
	}
}

func TestRedefinition(t *testing.T) {
	src := `
int main() {
    int x = 1;
    int x = 2;
    return x;
}
`
	if res := compileACC(t, src); res.OK {
		t.Fatal("redefinition compiled")
	}
}

func TestShadowingAllowed(t *testing.T) {
	src := `
int main() {
    int x = 1;
    { int x = 2; x++; }
    for (int x = 0; x < 3; x++) { ; }
    return 0;
}
`
	if res := compileACC(t, src); !res.OK {
		t.Fatalf("legal shadowing rejected:\n%s", res.Stderr)
	}
}

func TestSubscriptNonArray(t *testing.T) {
	src := `
int main() {
    int x = 1;
    return x[0];
}
`
	if res := compileACC(t, src); res.OK {
		t.Fatal("subscripting a scalar compiled")
	}
}

func TestAssignToNonLvalue(t *testing.T) {
	src := `
int main() {
    int x = 1;
    (x + 1) = 2;
    return 0;
}
`
	if res := compileACC(t, src); res.OK {
		t.Fatal("assignment to rvalue compiled")
	}
}

func TestVersionGateFutureDirective(t *testing.T) {
	// "loop" exists in OpenMP 5.0 only; our table omits it entirely, so
	// it surfaces as an unknown directive — matching a 4.5 compiler.
	src := `
int main() {
    int s = 0;
#pragma omp loop reduction(+:s)
    for (int i = 0; i < 4; i++) { s += i; }
    return 0;
}
`
	res := compileOMP(t, src)
	if res.OK {
		t.Fatal("OpenMP 5.0 'loop' directive accepted by 4.5 compiler model")
	}
}

func TestDiagnosticFormat(t *testing.T) {
	src := strings.Replace(validACC, "int main()\n{", "int main()\n", 1)
	res := compileACC(t, src)
	if !strings.Contains(res.Stderr, "nvc test.c:") {
		t.Fatalf("diagnostics lack compiler/file prefix:\n%s", res.Stderr)
	}
	if !strings.Contains(res.Stderr, "error(s) generated") {
		t.Fatalf("missing error summary:\n%s", res.Stderr)
	}
}

func TestCompileFortranValid(t *testing.T) {
	src := `program t
    implicit none
    integer :: i, s
    s = 0
    !$acc parallel loop reduction(+:s)
    do i = 1, 100
        s = s + i
    end do
    if (s /= 5050) then
        stop 1
    end if
end program t
`
	res := NVCSim().Compile("t.f90", src, testlang.LangFortran)
	if !res.OK {
		t.Fatalf("valid Fortran rejected:\n%s", res.Stderr)
	}
	if res.Object != nil {
		t.Fatal("Fortran must not produce an executable object in the simulation")
	}
}

func TestCompileFortranBroken(t *testing.T) {
	src := "program t\n    implicit none\n    x = 1\nend program t\n"
	res := NVCSim().Compile("t.f90", src, testlang.LangFortran)
	if res.OK {
		t.Fatal("Fortran with undeclared variable compiled")
	}
}

func TestBalancedBlockRemovalStillCompiles(t *testing.T) {
	// The hard negative-probing case: removing a balanced trailing
	// check block leaves a compilable program.
	src := strings.Replace(validACC, `    if (sum - expect > 1e-6 || expect - sum > 1e-6) {
        printf("FAIL\n");
        return 1;
    }
`, "", 1)
	res := compileACC(t, src)
	if !res.OK {
		t.Fatalf("balanced block removal should compile:\n%s", res.Stderr)
	}
}

func TestWarningsDoNotFailCompile(t *testing.T) {
	src := `
#include <stdio.h>
int main() {
#pragma pack(4)
    printf("ok\n");
    return 0;
}
`
	res := compileOMP(t, src)
	if !res.OK {
		t.Fatalf("unknown foreign pragma should only warn:\n%s", res.Stderr)
	}
	if !strings.Contains(res.Stderr, "warning") {
		t.Fatalf("expected a warning, got %q", res.Stderr)
	}
}
