package compiler

import (
	"fmt"

	"repro/internal/spec"
	"repro/internal/testlang"
)

// builtin function signatures: argument count range (max < 0 means
// variadic).
type builtinSig struct {
	min, max int
}

var builtins = map[string]builtinSig{
	"printf":  {1, -1},
	"fprintf": {2, -1},
	"malloc":  {1, 1},
	"calloc":  {2, 2},
	"free":    {1, 1},
	"exit":    {1, 1},
	"abs":     {1, 1},
	"labs":    {1, 1},
	"fabs":    {1, 1},
	"fabsf":   {1, 1},
	"sqrt":    {1, 1},
	"sqrtf":   {1, 1},
	"pow":     {2, 2},
	"floor":   {1, 1},
	"ceil":    {1, 1},
	"fmax":    {2, 2},
	"fmin":    {2, 2},
	"sin":     {1, 1},
	"cos":     {1, 1},
	"exp":     {1, 1},
	"log":     {1, 1},
	// Runtime-library queries modelled as builtins.
	"omp_get_num_threads":   {0, 0},
	"omp_get_thread_num":    {0, 0},
	"omp_get_max_threads":   {0, 0},
	"omp_get_num_devices":   {0, 0},
	"omp_is_initial_device": {0, 0},
	"acc_get_num_devices":   {0, 1},
	"acc_get_device_num":    {0, 1},
}

// builtinConsts are identifiers that resolve without declaration.
var builtinConsts = map[string]testlang.Type{
	"NULL":               {Base: "void", Ptr: 1},
	"stderr":             {Base: "void", Ptr: 1},
	"stdout":             {Base: "void", Ptr: 1},
	"RAND_MAX":           {Base: "int"},
	"acc_device_default": {Base: "int"},
	"acc_device_nvidia":  {Base: "int"},
	"acc_device_host":    {Base: "int"},
	"omp_sched_static":   {Base: "int"},
	"omp_sched_dynamic":  {Base: "int"},
	"EXIT_SUCCESS":       {Base: "int"},
	"EXIT_FAILURE":       {Base: "int"},
}

// symbol is one declared name in a scope.
type symbol struct {
	typ     testlang.Type
	isArray bool
	dims    int
}

type scope struct {
	parent *scope
	vars   map[string]*symbol
}

func (s *scope) lookup(name string) (*symbol, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if sym, ok := cur.vars[name]; ok {
			return sym, true
		}
	}
	return nil, false
}

func (s *scope) declare(name string, sym *symbol) bool {
	if _, exists := s.vars[name]; exists {
		return false
	}
	s.vars[name] = sym
	return true
}

// checker performs semantic analysis over one parsed file.
type checker struct {
	pers    *Personality
	file    *testlang.File
	diags   []Diagnostic
	funcs   map[string]*testlang.FuncDecl
	globals []*testlang.VarDecl
	plans   map[*testlang.DirectiveStmt]*DirPlan
	scope   *scope
	// implicitWarned avoids repeating the implicit-declaration
	// diagnostic for the same function name.
	implicitWarned map[string]bool
	// curFunc is the function being checked (for return diagnostics).
	curFunc *testlang.FuncDecl
	// directiveDepth > 0 while inside a compute construct, to validate
	// orphaned loop directives.
	directiveDepth int
	// coveredStack holds, per enclosing directive, the set of variable
	// names whose device bounds are known from data clauses. It backs
	// the OpenACC "size of the GPU copy is unknown" restriction.
	coveredStack []map[string]bool
}

// coveredVars collects the clause-covered variable names of a plan.
func coveredVars(plan *DirPlan) map[string]bool {
	out := map[string]bool{}
	for _, op := range plan.Data {
		for _, sec := range op.Sections {
			out[sec.Name] = true
		}
	}
	for _, name := range plan.Private {
		out[name] = true
	}
	for _, name := range plan.FirstPrivate {
		out[name] = true
	}
	for _, red := range plan.Reductions {
		for _, name := range red.Vars {
			out[name] = true
		}
	}
	return out
}

// checkDeviceBounds enforces the OpenACC compiler restriction that a
// heap pointer referenced inside a device compute construct must have
// its bounds known from a data clause on the construct or a lexically
// enclosing construct. Declared arrays have known sizes and are
// implicitly copied; bare pointers without bounds are a hard error on
// real OpenACC compilers ("size of the GPU copy of 'a' is unknown"),
// and that error is what catches many "removed data clause" probes at
// the pipeline's compile stage.
func (c *checker) checkDeviceBounds(ds *testlang.DirectiveStmt) {
	if ds.Body == nil {
		return
	}
	local := map[string]bool{}
	testlang.Walk(ds.Body, func(s testlang.Stmt) bool {
		switch n := s.(type) {
		case *testlang.DeclStmt:
			for _, d := range n.Decls {
				local[d.Name] = true
			}
		case *testlang.ForStmt:
			if init, ok := n.Init.(*testlang.DeclStmt); ok {
				for _, d := range init.Decls {
					local[d.Name] = true
				}
			}
		case *testlang.DirectiveStmt:
			// Nested directives' clauses also provide bounds.
			if plan := c.plans[n]; plan != nil {
				for name := range coveredVars(plan) {
					local[name] = true
				}
			} else if n.Dir != nil {
				for _, cl := range n.Dir.Clauses {
					for _, v := range testlang.ClauseVars(cl.Arg) {
						local[v] = true
					}
				}
			}
		}
		return true
	})
	reported := map[string]bool{}
	testlang.WalkExprs(ds.Body, func(e testlang.Expr) {
		id, ok := e.(*testlang.IdentExpr)
		if !ok || local[id.Name] || reported[id.Name] {
			return
		}
		sym, found := c.scope.lookup(id.Name)
		if !found || sym.isArray || sym.typ.Ptr == 0 {
			return
		}
		for _, covered := range c.coveredStack {
			if covered[id.Name] {
				return
			}
		}
		reported[id.Name] = true
		c.errorf(ds.Dir.Pos(), "Accelerator restriction: size of the GPU copy of %q is unknown", id.Name)
	})
}

func (c *checker) errorf(line int, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{Line: line, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) warnf(line int, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{Line: line, Warning: true, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) push() { c.scope = &scope{parent: c.scope, vars: map[string]*symbol{}} }
func (c *checker) pop()  { c.scope = c.scope.parent }

// check runs all semantic checks and returns the diagnostics.
func (c *checker) check() []Diagnostic {
	c.funcs = map[string]*testlang.FuncDecl{}
	c.plans = map[*testlang.DirectiveStmt]*DirPlan{}
	c.implicitWarned = map[string]bool{}
	c.scope = &scope{vars: map[string]*symbol{}}

	// Pass 1: collect file-scope names so call order does not matter.
	for _, d := range c.file.Decls {
		switch n := d.(type) {
		case *testlang.FuncDecl:
			if prev, dup := c.funcs[n.Name]; dup && prev.Body != nil && n.Body != nil {
				c.errorf(n.Pos(), "redefinition of function %q", n.Name)
			}
			if n.Body != nil || c.funcs[n.Name] == nil {
				c.funcs[n.Name] = n
			}
		case *testlang.VarDecl:
			c.globals = append(c.globals, n)
			sym := &symbol{typ: n.Type, isArray: len(n.ArrayDims) > 0, dims: len(n.ArrayDims)}
			if !c.scope.declare(n.Name, sym) {
				c.errorf(n.Pos(), "redefinition of %q", n.Name)
			}
		}
	}

	// Pass 2: check bodies.
	for _, d := range c.file.Decls {
		switch n := d.(type) {
		case *testlang.VarDecl:
			c.checkVarInit(n)
		case *testlang.FuncDecl:
			c.checkFunc(n)
		}
	}

	if main, ok := c.funcs["main"]; !ok || main.Body == nil {
		c.errorf(1, "undefined reference to `main'")
	}
	return c.diags
}

func (c *checker) checkVarInit(v *testlang.VarDecl) {
	for _, dim := range v.ArrayDims {
		if dim != nil {
			c.checkExpr(dim)
		}
	}
	if v.Init != nil {
		c.checkExpr(v.Init)
	}
}

func (c *checker) checkFunc(fd *testlang.FuncDecl) {
	for _, pr := range fd.Pragmas {
		c.plans[pr] = c.validateDirective(pr, true)
	}
	if fd.Body == nil {
		return
	}
	c.curFunc = fd
	c.push()
	for _, p := range fd.Params {
		sym := &symbol{typ: p.Type, isArray: p.Array}
		if p.Array {
			sym.dims = 1
		}
		if p.Name != "" && !c.scope.declare(p.Name, sym) {
			c.errorf(fd.Pos(), "duplicate parameter %q", p.Name)
		}
	}
	c.checkStmt(fd.Body)
	c.pop()
	c.curFunc = nil
}

func (c *checker) checkStmt(s testlang.Stmt) {
	switch n := s.(type) {
	case nil:
	case *testlang.Block:
		c.push()
		for _, st := range n.Stmts {
			c.checkStmt(st)
		}
		c.pop()
	case *testlang.DeclStmt:
		for _, d := range n.Decls {
			c.checkVarInit(d)
			sym := &symbol{typ: d.Type, isArray: len(d.ArrayDims) > 0, dims: len(d.ArrayDims)}
			if !c.scope.declare(d.Name, sym) {
				c.errorf(d.Pos(), "redefinition of %q", d.Name)
			}
		}
	case *testlang.ExprStmt:
		c.checkExpr(n.X)
	case *testlang.IfStmt:
		c.checkExpr(n.Cond)
		c.checkStmt(n.Then)
		c.checkStmt(n.Else)
	case *testlang.ForStmt:
		c.push()
		c.checkStmt(n.Init)
		if n.Cond != nil {
			c.checkExpr(n.Cond)
		}
		if n.Post != nil {
			c.checkExpr(n.Post)
		}
		c.checkStmt(n.Body)
		c.pop()
	case *testlang.WhileStmt:
		c.checkExpr(n.Cond)
		c.checkStmt(n.Body)
	case *testlang.ReturnStmt:
		if n.X != nil {
			c.checkExpr(n.X)
		}
	case *testlang.BreakStmt, *testlang.ContinueStmt, *testlang.EmptyStmt:
	case *testlang.DirectiveStmt:
		plan := c.validateDirective(n, false)
		c.plans[n] = plan
		if plan != nil {
			c.coveredStack = append(c.coveredStack, coveredVars(plan))
			if plan.Device && c.pers.Dialect == spec.OpenACC {
				c.checkDeviceBounds(n)
			}
		}
		if n.Body != nil {
			wasInside := c.directiveDepth
			if plan != nil && plan.Kind.opensComputeRegion() {
				c.directiveDepth++
			}
			c.checkStmt(n.Body)
			c.directiveDepth = wasInside
		}
		if plan != nil {
			c.coveredStack = c.coveredStack[:len(c.coveredStack)-1]
		}
	case *testlang.UnknownPragmaStmt:
		c.warnf(n.Pos(), "ignoring unrecognised #pragma %s", firstWord(n.Raw))
	}
}

func firstWord(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return s[:i]
		}
	}
	return s
}

// typeOf infers a light static type for an expression; the bool result
// reports whether the expression denotes an indexable object (array or
// pointer).
func (c *checker) typeOf(e testlang.Expr) (testlang.Type, bool) {
	switch n := e.(type) {
	case *testlang.IdentExpr:
		if sym, ok := c.scope.lookup(n.Name); ok {
			return sym.typ, sym.isArray || sym.typ.Ptr > 0
		}
		if t, ok := builtinConsts[n.Name]; ok {
			return t, t.Ptr > 0
		}
		return testlang.Type{Base: "int"}, false
	case *testlang.IntLitExpr:
		return testlang.Type{Base: "int"}, false
	case *testlang.FloatLitExpr:
		return testlang.Type{Base: "double"}, false
	case *testlang.StringLitExpr:
		return testlang.Type{Base: "char", Ptr: 1}, false
	case *testlang.CharLitExpr:
		return testlang.Type{Base: "char"}, false
	case *testlang.BinaryExpr:
		lt, _ := c.typeOf(n.L)
		rt, _ := c.typeOf(n.R)
		if lt.IsFloat() || rt.IsFloat() {
			return testlang.Type{Base: "double"}, false
		}
		return testlang.Type{Base: "int"}, false
	case *testlang.UnaryExpr:
		if n.Op == "*" {
			t, _ := c.typeOf(n.X)
			if t.Ptr > 0 {
				return testlang.Type{Base: t.Base, Ptr: t.Ptr - 1}, t.Ptr-1 > 0
			}
			return t, false
		}
		if n.Op == "&" {
			t, _ := c.typeOf(n.X)
			return testlang.Type{Base: t.Base, Ptr: t.Ptr + 1}, true
		}
		return c.typeOf(n.X)
	case *testlang.PostfixExpr:
		return c.typeOf(n.X)
	case *testlang.AssignExpr:
		return c.typeOf(n.L)
	case *testlang.CondExpr:
		return c.typeOf(n.Then)
	case *testlang.CallExpr:
		if fd, ok := c.funcs[n.Fun]; ok {
			return fd.Ret, fd.Ret.Ptr > 0
		}
		switch n.Fun {
		case "malloc", "calloc":
			return testlang.Type{Base: "void", Ptr: 1}, true
		case "fabs", "sqrt", "pow", "floor", "ceil", "fmax", "fmin", "sin", "cos", "exp", "log", "fabsf", "sqrtf":
			return testlang.Type{Base: "double"}, false
		}
		return testlang.Type{Base: "int"}, false
	case *testlang.IndexExpr:
		t, _ := c.typeOf(n.X)
		if t.Ptr > 0 {
			return testlang.Type{Base: t.Base, Ptr: t.Ptr - 1}, t.Ptr-1 > 0
		}
		// Indexing a declared array: element type; nested dims handled
		// by repeated IndexExprs, each stripping one dimension.
		if id, ok := n.X.(*testlang.IdentExpr); ok {
			if sym, found := c.scope.lookup(id.Name); found && sym.isArray {
				if sym.dims > 1 {
					return sym.typ, true
				}
				return sym.typ, false
			}
		}
		if inner, ok := n.X.(*testlang.IndexExpr); ok {
			it, _ := c.typeOf(inner)
			return it, false
		}
		return t, false
	case *testlang.CastExpr:
		return n.To, n.To.Ptr > 0
	case *testlang.SizeofExpr:
		return testlang.Type{Base: "long"}, false
	case *testlang.InitList:
		return testlang.Type{Base: "int"}, false
	default:
		return testlang.Type{Base: "int"}, false
	}
}

func (c *checker) checkExpr(e testlang.Expr) {
	switch n := e.(type) {
	case nil:
	case *testlang.IdentExpr:
		if _, ok := c.scope.lookup(n.Name); ok {
			return
		}
		if _, ok := builtinConsts[n.Name]; ok {
			return
		}
		if _, ok := c.funcs[n.Name]; ok {
			return
		}
		c.errorf(n.Pos(), "use of undeclared identifier %q", n.Name)
	case *testlang.BinaryExpr:
		c.checkExpr(n.L)
		c.checkExpr(n.R)
	case *testlang.UnaryExpr:
		if n.Op == "++" || n.Op == "--" || n.Op == "&" {
			c.requireLvalue(n.X)
		}
		if n.Op == "*" {
			if t, _ := c.typeOf(n.X); t.Ptr == 0 {
				c.errorf(n.Pos(), "indirection requires pointer operand")
			}
		}
		c.checkExpr(n.X)
	case *testlang.PostfixExpr:
		c.requireLvalue(n.X)
		c.checkExpr(n.X)
	case *testlang.AssignExpr:
		c.requireLvalue(n.L)
		c.checkExpr(n.L)
		c.checkExpr(n.R)
	case *testlang.CondExpr:
		c.checkExpr(n.Cond)
		c.checkExpr(n.Then)
		c.checkExpr(n.Else)
	case *testlang.CallExpr:
		c.checkCall(n)
	case *testlang.IndexExpr:
		if _, indexable := c.typeOf(n.X); !indexable {
			c.errorf(n.Pos(), "subscripted value is not an array or pointer")
		}
		c.checkExpr(n.X)
		c.checkExpr(n.Index)
	case *testlang.CastExpr:
		c.checkExpr(n.X)
	case *testlang.SizeofExpr:
	case *testlang.InitList:
		for _, el := range n.Elems {
			c.checkExpr(el)
		}
	}
}

func (c *checker) requireLvalue(e testlang.Expr) {
	switch x := e.(type) {
	case *testlang.IdentExpr, *testlang.IndexExpr:
	case *testlang.UnaryExpr:
		if x.Op != "*" {
			c.errorf(x.Pos(), "expression is not assignable")
		}
	default:
		c.errorf(e.Pos(), "expression is not assignable")
	}
}

func (c *checker) checkCall(call *testlang.CallExpr) {
	for _, a := range call.Args {
		c.checkExpr(a)
	}
	if fd, ok := c.funcs[call.Fun]; ok {
		if len(call.Args) != len(fd.Params) {
			c.errorf(call.Pos(), "call to %q with %d argument(s), expected %d",
				call.Fun, len(call.Args), len(fd.Params))
		}
		return
	}
	if sig, ok := builtins[call.Fun]; ok {
		if len(call.Args) < sig.min || (sig.max >= 0 && len(call.Args) > sig.max) {
			c.errorf(call.Pos(), "wrong number of arguments to %q", call.Fun)
		}
		return
	}
	// Implicit function declaration: personality-dependent severity.
	// This is the mechanism by which randomly generated plain-C code
	// (negative-probing issue 3) fails under the strict nvc model but
	// sails through the clang model with a warning.
	if c.implicitWarned[call.Fun] {
		return
	}
	c.implicitWarned[call.Fun] = true
	if c.pers.ImplicitDeclError {
		c.errorf(call.Pos(), "call to undeclared function %q; function calls require a declaration in this language mode", call.Fun)
	} else {
		c.warnf(call.Pos(), "implicit declaration of function %q", call.Fun)
	}
}
