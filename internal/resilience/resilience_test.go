package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDelayExponentialCapped(t *testing.T) {
	p := NewPolicy(10*time.Millisecond, 100*time.Millisecond)
	for attempt, base := range []time.Duration{10, 20, 40, 80, 100, 100} {
		base *= time.Millisecond
		d := p.Delay(attempt, 0, false)
		if d < base || d > base+base/2 {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, base, base+base/2)
		}
	}
}

func TestDelayHugeAttemptDoesNotOverflow(t *testing.T) {
	p := NewPolicy(25*time.Millisecond, 2*time.Second)
	for _, attempt := range []int{29, 30, 31, 63, 1000} {
		if d := p.Delay(attempt, 0, false); d < 2*time.Second || d > 3*time.Second {
			t.Errorf("attempt %d: delay %v, want capped near 2s", attempt, d)
		}
	}
}

func TestDelayHintSemantics(t *testing.T) {
	p := NewPolicy(time.Millisecond, time.Second)
	// An explicit zero hint short-circuits backoff entirely.
	if d := p.Delay(10, 0, true); d != 0 {
		t.Errorf("explicit zero hint: delay %v, want 0", d)
	}
	// A hint above the computed backoff floors the delay.
	if d := p.Delay(0, 300*time.Millisecond, true); d < 300*time.Millisecond {
		t.Errorf("hint 300ms floored to %v", d)
	}
	// Zero base with no hint: retry immediately.
	z := NewPolicy(0, time.Second)
	if d := z.Delay(0, 0, false); d != 0 {
		t.Errorf("zero base: delay %v, want 0", d)
	}
}

func TestSleepFailsFastWhenDelayExceedsBudget(t *testing.T) {
	p := NewPolicy(time.Second, 2*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.Sleep(ctx, 0, 0, false)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("got %v, want ErrBudget", err)
	}
	// The wrap contract: deadline-classifying callers see the cause.
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("ErrBudget does not unwrap to context.DeadlineExceeded")
	}
	if elapsed > 20*time.Millisecond {
		t.Errorf("Sleep parked %v before failing; budget exhaustion must be immediate", elapsed)
	}
}

func TestSleepHintClampedByBudget(t *testing.T) {
	// A server Retry-After hint far past the caller's deadline must not
	// park the caller: this is the adversarial-daemon case.
	p := NewPolicy(time.Millisecond, time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.Sleep(ctx, 0, time.Hour, true)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("got %v, want ErrBudget", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Errorf("hour-long hint parked the caller %v", elapsed)
	}
}

func TestSleepWaitsAndReturnsNil(t *testing.T) {
	p := NewPolicy(5*time.Millisecond, time.Second)
	start := time.Now()
	if err := p.Sleep(context.Background(), 0, 0, false); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("slept only %v, want >= 5ms", elapsed)
	}
}

func TestSleepCancelledContext(t *testing.T) {
	p := NewPolicy(time.Hour, 2*time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Sleep(ctx, 0, 0, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func testBreaker(threshold int, cooldown time.Duration, clock *time.Time) *Breaker {
	return NewBreaker(BreakerConfig{
		Threshold: threshold,
		Cooldown:  cooldown,
		Clock:     func() time.Time { return *clock },
	})
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	now := time.Unix(0, 0)
	b := testBreaker(3, time.Second, &now)
	if got := b.State(); got != StateClosed {
		t.Fatalf("fresh breaker state %v, want closed", got)
	}
	b.Failure()
	b.Failure()
	if !b.Allow() {
		t.Fatal("breaker refused below threshold")
	}
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker allowed after tripping")
	}
	if got := b.State(); got != StateOpen {
		t.Fatalf("state %v, want open", got)
	}
	if got := b.Trips(); got != 1 {
		t.Fatalf("trips %d, want 1", got)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	now := time.Unix(0, 0)
	b := testBreaker(3, time.Second, &now)
	for i := 0; i < 10; i++ {
		b.Failure()
		b.Failure()
		b.Success() // streak broken: never reaches 3 consecutive
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state %v, want closed (failures were not consecutive)", got)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b := testBreaker(1, time.Second, &now)
	b.Failure()
	if b.Allow() {
		t.Fatal("allowed while open")
	}
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: first Allow must claim the probe")
	}
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state %v, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("second Allow admitted a request while the probe is outstanding")
	}
	b.Success()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after probe success %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	now := time.Unix(0, 0)
	b := testBreaker(1, time.Second, &now)
	b.Failure()
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after probe failure %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed before a fresh cooldown")
	}
	if got := b.Trips(); got != 2 {
		t.Fatalf("trips %d, want 2", got)
	}
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("second cooldown elapsed: probe refused")
	}
}

func TestNilBreakerIsPermanentlyClosed(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker refused")
	}
	b.Failure()
	b.Success()
	if got := b.State(); got != StateClosed {
		t.Fatalf("nil breaker state %v, want closed", got)
	}
	if got := b.Trips(); got != 0 {
		t.Fatalf("nil breaker trips %d, want 0", got)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{StateClosed: "closed", StateHalfOpen: "half-open", StateOpen: "open", State(7): "state(7)"} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}
