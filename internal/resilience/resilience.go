// Package resilience is the unified failure-handling policy layer:
// one jittered-exponential-backoff retry policy with deadline-budget
// awareness, and one per-target circuit breaker, consumed by the
// remote client's multi-address failover and the fleet Router in
// place of their former ad-hoc logic.
//
// The two pieces compose but do not couple: a Policy decides how long
// to wait between attempts against one logical service, a Breaker
// decides whether a specific target is worth an attempt at all.
// Both are safe for concurrent use; a nil *Breaker behaves as a
// permanently closed one, so call sites need no guards when breaking
// is optional.
package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Policy is a jittered exponential retry-backoff policy: attempt k
// waits Base·2^k plus up to 50% jitter, capped at Max, floored by a
// server Retry-After hint when one was sent. Construct with
// NewPolicy; the struct carries its own jitter source, so it is not
// copyable.
type Policy struct {
	base time.Duration
	max  time.Duration

	mu  sync.Mutex
	rnd *rand.Rand
}

// NewPolicy builds a retry policy from the base delay and the
// per-attempt cap. A base of zero (or less) means retry immediately;
// a cap of zero falls back to 2s.
func NewPolicy(base, max time.Duration) *Policy {
	if max <= 0 {
		max = 2 * time.Second
	}
	return &Policy{base: base, max: max, rnd: rand.New(rand.NewSource(time.Now().UnixNano()))}
}

// Delay computes the wait before retrying after attempt (0-based):
// jittered exponential from the attempt number, floored by the
// server's Retry-After hint. An explicit hint of zero means "retry
// immediately" (the server's queue just drained) and short-circuits
// the backoff entirely; only an absent hint falls back to pure
// backoff.
func (p *Policy) Delay(attempt int, hint time.Duration, hasHint bool) time.Duration {
	if hasHint && hint == 0 {
		return 0
	}
	// Cap the exponent before shifting: a large retry budget must not
	// overflow the shift into a negative duration.
	d := p.max
	if p.base <= 0 {
		d = 0
	} else if attempt < 30 {
		if shifted := p.base << attempt; shifted > 0 && shifted < p.max {
			d = shifted
		}
	}
	if d > 0 {
		p.mu.Lock()
		d += time.Duration(p.rnd.Int63n(int64(d)/2 + 1))
		p.mu.Unlock()
	}
	if hint > d {
		d = hint
	}
	return d
}

// ErrBudget reports a retry delay that exceeds the remaining context
// deadline budget: sleeping it out could only end in the deadline
// firing, so Sleep fails immediately instead of parking the caller.
// It wraps context.DeadlineExceeded — the deadline is the reason the
// retry cannot happen — so errors.Is(err, context.DeadlineExceeded)
// holds for callers that classify by cause.
var ErrBudget = fmt.Errorf("resilience: retry delay exceeds remaining deadline budget: %w", context.DeadlineExceeded)

// Sleep waits out the Delay for attempt, or returns early: with the
// context's error when it ends mid-wait, or with ErrBudget — without
// sleeping at all — when the computed delay cannot fit in the
// context's remaining deadline budget. A malicious or miscalibrated
// Retry-After hint therefore costs nothing: the caller learns
// immediately that its budget is spent instead of burning it parked.
func (p *Policy) Sleep(ctx context.Context, attempt int, hint time.Duration, hasHint bool) error {
	d := p.Delay(attempt, hint, hasHint)
	if d <= 0 {
		return ctx.Err()
	}
	if deadline, ok := ctx.Deadline(); ok {
		if remaining := time.Until(deadline); remaining <= d {
			return fmt.Errorf("%w (need %v, have %v)", ErrBudget, d, remaining)
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Breaker states. The numeric values are the wire contract of the
// llm4vv_resilience_breaker_state gauge: dashboards alert on 2.
const (
	StateClosed   State = 0 // normal operation, requests flow
	StateHalfOpen State = 1 // cooled down, one probe in flight
	StateOpen     State = 2 // tripped, requests refused
)

// State is a circuit breaker state.
type State int32

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// BreakerStatus is one breaker's identity and state, the currency of
// the optional BreakerStates() []BreakerStatus interface that metrics
// endpoints discover on endpoints fronting multiple targets.
type BreakerStatus struct {
	ID    string
	State State
	Trips uint64
}

// BreakerConfig configures a Breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the
	// breaker open; <= 0 means DefaultBreakerThreshold.
	Threshold int
	// Cooldown is how long an open breaker refuses before allowing a
	// half-open probe; <= 0 means DefaultBreakerCooldown.
	Cooldown time.Duration
	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time
}

// Defaults for BreakerConfig zero values.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 500 * time.Millisecond
)

// Breaker is a consecutive-failure circuit breaker for one target:
// Threshold consecutive failures trip it open, the Cooldown later it
// admits exactly one half-open probe, and the probe's outcome closes
// it or re-opens it. A nil *Breaker is permanently closed (always
// allows, never counts), so optional breaking needs no call-site
// guards.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    State
	failures int
	openedAt time.Time
	probing  bool
	trips    uint64
}

// NewBreaker builds a breaker from cfg, defaults applied.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultBreakerThreshold
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultBreakerCooldown
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Breaker{threshold: cfg.Threshold, cooldown: cfg.Cooldown, now: cfg.Clock}
}

// Allow reports whether a request may proceed against this target.
// It is consuming in the half-open state: the first Allow after the
// cooldown claims the single probe slot, and further Allows refuse
// until that probe reports Success or Failure — so call Allow only
// when the request will actually be sent.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = StateHalfOpen
		b.probing = true
		return true
	default: // StateHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful request, closing the breaker.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.state = StateClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure records a failed request: in the closed state it counts
// toward the trip threshold, in the half-open state it re-opens the
// breaker for another cooldown.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	case StateHalfOpen:
		b.trip()
	case StateOpen:
		// Fallback traffic through an open breaker ("progress beats
		// protection") failing again keeps it open; refresh the window
		// so the cooldown measures from the latest evidence.
		b.openedAt = b.now()
	}
}

// trip opens the breaker; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = StateOpen
	b.openedAt = b.now()
	b.failures = 0
	b.probing = false
	b.trips++
}

// State reports the breaker's current state without consuming the
// half-open probe slot. An open breaker whose cooldown has elapsed
// still reports open until an Allow claims the probe.
func (b *Breaker) State() State {
	if b == nil {
		return StateClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips reports how many times the breaker has tripped open.
func (b *Breaker) Trips() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
