// Package spec encodes the directive specifications for the two
// directive-based programming models the paper targets: OpenACC (as
// accepted by the simulated NVIDIA HPC SDK compiler) and OpenMP
// restricted to version 4.5 and below (as accepted by the simulated
// LLVM offloading compiler — the paper restricts its Part-Two OpenMP
// suite to <= 4.5 so the compiler is fully compliant for every feature
// present).
//
// The tables here are the single source of truth consumed by:
//
//   - internal/compiler, to validate directives and clauses;
//   - internal/corpus, to generate only specification-conforming tests;
//   - internal/probe, to produce "swapped directive" mutations that are
//     plausibly-shaped but invalid;
//   - internal/model, whose feature extractor checks code against the
//     same tables a real code LLM would have absorbed from training.
package spec

import (
	"fmt"
	"sort"
	"strings"
)

// Dialect identifies one of the two directive-based programming models.
type Dialect int

const (
	// OpenACC is the OpenACC 3.x model compiled by the simulated nvc.
	OpenACC Dialect = iota
	// OpenMP is the OpenMP <= 4.5 model compiled by the simulated
	// LLVM offloading compiler.
	OpenMP
)

// String returns the conventional model name.
func (d Dialect) String() string {
	switch d {
	case OpenACC:
		return "OpenACC"
	case OpenMP:
		return "OpenMP"
	default:
		return fmt.Sprintf("Dialect(%d)", int(d))
	}
}

// Sentinel returns the pragma sentinel for C/C++ sources ("acc"/"omp").
func (d Dialect) Sentinel() string {
	if d == OpenACC {
		return "acc"
	}
	return "omp"
}

// FortranSentinel returns the comment sentinel used in free-form
// Fortran sources ("!$acc"/"!$omp").
func (d Dialect) FortranSentinel() string {
	return "!$" + d.Sentinel()
}

// ClauseArg describes the argument shape a clause accepts.
type ClauseArg int

const (
	// ArgNone means the clause takes no parenthesised argument
	// (e.g. "independent", "nowait").
	ArgNone ClauseArg = iota
	// ArgVarList means a comma-separated list of variable references,
	// possibly with array sections (e.g. "copyin(a[0:n])").
	ArgVarList
	// ArgIntExpr means a single integer expression (e.g. "num_gangs(32)").
	ArgIntExpr
	// ArgReduction means a reduction operator followed by a variable
	// list (e.g. "reduction(+:sum)").
	ArgReduction
	// ArgMap means an OpenMP map clause: map-type ":" variable list
	// (e.g. "map(tofrom: a[0:n])").
	ArgMap
	// ArgOptionalIntExpr means the parenthesised argument may be
	// omitted (e.g. OpenACC "async" / "worker(4)").
	ArgOptionalIntExpr
	// ArgIfExpr means a scalar condition expression (e.g. "if(n > 0)").
	ArgIfExpr
)

// Clause describes one clause accepted by one or more directives.
type Clause struct {
	Name string
	Arg  ClauseArg
}

// Directive describes one directive of a dialect: its (possibly
// multi-word) name, the clauses it accepts, whether it must be
// associated with an immediately following loop or structured block,
// and the model version that introduced it.
type Directive struct {
	// Name is the space-separated directive name as written after the
	// sentinel, e.g. "parallel loop" or "target teams distribute".
	Name string
	// Clauses maps clause name to its argument shape.
	Clauses map[string]ClauseArg
	// Association describes what program construct must follow.
	Association Association
	// Version is the minimum specification version (x10: 45 = 4.5,
	// 30 = 3.0). The simulated compilers gate on this.
	Version int
	// Standalone directives (e.g. "update", "barrier") take effect at
	// their own position rather than opening a region.
	Standalone bool
}

// Association describes the construct a directive must be attached to.
type Association int

const (
	// AssocNone: standalone executable directive.
	AssocNone Association = iota
	// AssocBlock: applies to the following structured block (compound
	// statement or single statement).
	AssocBlock
	// AssocLoop: must be followed by a for/do loop.
	AssocLoop
	// AssocStatement: must be followed by a single supported statement
	// (e.g. atomic update).
	AssocStatement
)

// ReductionOps lists the reduction operators both models accept on the
// numeric types the test corpus uses.
var ReductionOps = []string{"+", "*", "max", "min", "&&", "||"}

// Spec is a complete directive specification for one dialect.
type Spec struct {
	Dialect    Dialect
	directives map[string]*Directive
	// MaxVersion is the highest specification version the simulated
	// compiler accepts (e.g. 45 for OpenMP 4.5).
	MaxVersion int
}

// Lookup returns the directive with the given space-normalised name.
func (s *Spec) Lookup(name string) (*Directive, bool) {
	d, ok := s.directives[normalize(name)]
	return d, ok
}

// Directives returns all directive names, sorted, for deterministic
// iteration by the corpus generator and mutators.
func (s *Spec) Directives() []string {
	names := make([]string, 0, len(s.directives))
	for n := range s.directives {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HasClause reports whether directive dir accepts clause cl.
func (s *Spec) HasClause(dir, cl string) bool {
	d, ok := s.Lookup(dir)
	if !ok {
		return false
	}
	_, ok = d.Clauses[cl]
	return ok
}

// LongestDirective returns the longest directive name (in words) that
// is a prefix of the given token sequence, along with the number of
// words consumed. It returns ok=false if no directive matches.
// Directive grammars are word-greedy: "target teams distribute
// parallel for" must win over "target".
func (s *Spec) LongestDirective(words []string) (d *Directive, consumed int, ok bool) {
	best := 0
	var bestDir *Directive
	for n := range s.directives {
		parts := strings.Fields(n)
		if len(parts) > len(words) || len(parts) <= best {
			continue
		}
		match := true
		for i, p := range parts {
			if words[i] != p {
				match = false
				break
			}
		}
		if match {
			best = len(parts)
			bestDir = s.directives[n]
		}
	}
	if bestDir == nil {
		return nil, 0, false
	}
	return bestDir, best, true
}

func normalize(name string) string {
	return strings.Join(strings.Fields(name), " ")
}

func buildSpec(d Dialect, maxVersion int, dirs []*Directive) *Spec {
	m := make(map[string]*Directive, len(dirs))
	for _, dir := range dirs {
		m[normalize(dir.Name)] = dir
	}
	return &Spec{Dialect: d, directives: m, MaxVersion: maxVersion}
}

// clauseSet builds a clause map from (name, arg) pairs declared with
// the cl helper.
func clauseSet(cs ...Clause) map[string]ClauseArg {
	m := make(map[string]ClauseArg, len(cs))
	for _, c := range cs {
		m[c.Name] = c.Arg
	}
	return m
}

func cl(name string, arg ClauseArg) Clause { return Clause{Name: name, Arg: arg} }

// Shared clause groups.
var (
	accDataClauses = []Clause{
		cl("copy", ArgVarList),
		cl("copyin", ArgVarList),
		cl("copyout", ArgVarList),
		cl("create", ArgVarList),
		cl("present", ArgVarList),
		cl("deviceptr", ArgVarList),
		cl("no_create", ArgVarList),
		cl("attach", ArgVarList),
	}
	accComputeClauses = append([]Clause{
		cl("if", ArgIfExpr),
		cl("async", ArgOptionalIntExpr),
		cl("wait", ArgOptionalIntExpr),
		cl("num_gangs", ArgIntExpr),
		cl("num_workers", ArgIntExpr),
		cl("vector_length", ArgIntExpr),
		cl("private", ArgVarList),
		cl("firstprivate", ArgVarList),
		cl("reduction", ArgReduction),
		cl("default", ArgVarList), // default(none) / default(present)
	}, accDataClauses...)
	accLoopClauses = []Clause{
		cl("gang", ArgOptionalIntExpr),
		cl("worker", ArgOptionalIntExpr),
		cl("vector", ArgOptionalIntExpr),
		cl("seq", ArgNone),
		cl("independent", ArgNone),
		cl("auto", ArgNone),
		cl("collapse", ArgIntExpr),
		cl("tile", ArgVarList),
		cl("private", ArgVarList),
		cl("reduction", ArgReduction),
	}
)

// OpenACCSpec returns the OpenACC 3.x specification table accepted by
// the simulated nvc compiler.
func OpenACCSpec() *Spec {
	return buildSpec(OpenACC, 33, []*Directive{
		{Name: "parallel", Clauses: clauseSet(accComputeClauses...), Association: AssocBlock, Version: 10},
		{Name: "kernels", Clauses: clauseSet(accComputeClauses...), Association: AssocBlock, Version: 10},
		{Name: "serial", Clauses: clauseSet(append([]Clause{
			cl("if", ArgIfExpr), cl("async", ArgOptionalIntExpr), cl("wait", ArgOptionalIntExpr),
			cl("private", ArgVarList), cl("firstprivate", ArgVarList), cl("reduction", ArgReduction),
		}, accDataClauses...)...), Association: AssocBlock, Version: 27},
		{Name: "parallel loop", Clauses: clauseSet(append(append([]Clause{}, accComputeClauses...), accLoopClauses...)...), Association: AssocLoop, Version: 10},
		{Name: "kernels loop", Clauses: clauseSet(append(append([]Clause{}, accComputeClauses...), accLoopClauses...)...), Association: AssocLoop, Version: 10},
		{Name: "serial loop", Clauses: clauseSet(accLoopClauses...), Association: AssocLoop, Version: 27},
		{Name: "loop", Clauses: clauseSet(accLoopClauses...), Association: AssocLoop, Version: 10},
		{Name: "data", Clauses: clauseSet(append([]Clause{cl("if", ArgIfExpr), cl("async", ArgOptionalIntExpr), cl("wait", ArgOptionalIntExpr)}, accDataClauses...)...), Association: AssocBlock, Version: 10},
		{Name: "enter data", Clauses: clauseSet(cl("copyin", ArgVarList), cl("create", ArgVarList), cl("attach", ArgVarList), cl("if", ArgIfExpr), cl("async", ArgOptionalIntExpr), cl("wait", ArgOptionalIntExpr)), Association: AssocNone, Standalone: true, Version: 20},
		{Name: "exit data", Clauses: clauseSet(cl("copyout", ArgVarList), cl("delete", ArgVarList), cl("detach", ArgVarList), cl("if", ArgIfExpr), cl("async", ArgOptionalIntExpr), cl("wait", ArgOptionalIntExpr), cl("finalize", ArgNone)), Association: AssocNone, Standalone: true, Version: 20},
		{Name: "host_data", Clauses: clauseSet(cl("use_device", ArgVarList), cl("if", ArgIfExpr), cl("if_present", ArgNone)), Association: AssocBlock, Version: 10},
		{Name: "update", Clauses: clauseSet(cl("host", ArgVarList), cl("self", ArgVarList), cl("device", ArgVarList), cl("if", ArgIfExpr), cl("async", ArgOptionalIntExpr), cl("wait", ArgOptionalIntExpr), cl("if_present", ArgNone)), Association: AssocNone, Standalone: true, Version: 10},
		{Name: "atomic", Clauses: clauseSet(cl("read", ArgNone), cl("write", ArgNone), cl("update", ArgNone), cl("capture", ArgNone)), Association: AssocStatement, Version: 20},
		{Name: "wait", Clauses: clauseSet(cl("async", ArgOptionalIntExpr), cl("if", ArgIfExpr)), Association: AssocNone, Standalone: true, Version: 10},
		{Name: "routine", Clauses: clauseSet(cl("gang", ArgNone), cl("worker", ArgNone), cl("vector", ArgNone), cl("seq", ArgNone), cl("bind", ArgVarList)), Association: AssocNone, Standalone: true, Version: 20},
		{Name: "declare", Clauses: clauseSet(append([]Clause{cl("device_resident", ArgVarList), cl("link", ArgVarList)}, accDataClauses...)...), Association: AssocNone, Standalone: true, Version: 10},
		{Name: "init", Clauses: clauseSet(cl("device_type", ArgVarList), cl("device_num", ArgIntExpr)), Association: AssocNone, Standalone: true, Version: 30},
		{Name: "shutdown", Clauses: clauseSet(cl("device_type", ArgVarList), cl("device_num", ArgIntExpr)), Association: AssocNone, Standalone: true, Version: 30},
		{Name: "set", Clauses: clauseSet(cl("device_type", ArgVarList), cl("device_num", ArgIntExpr), cl("default_async", ArgIntExpr)), Association: AssocNone, Standalone: true, Version: 30},
	})
}

// Shared OpenMP clause groups (<= 4.5 feature set).
var (
	ompParallelClauses = []Clause{
		cl("if", ArgIfExpr),
		cl("num_threads", ArgIntExpr),
		cl("default", ArgVarList), // default(shared) / default(none)
		cl("private", ArgVarList),
		cl("firstprivate", ArgVarList),
		cl("shared", ArgVarList),
		cl("reduction", ArgReduction),
		cl("proc_bind", ArgVarList),
	}
	ompForClauses = []Clause{
		cl("private", ArgVarList),
		cl("firstprivate", ArgVarList),
		cl("lastprivate", ArgVarList),
		cl("reduction", ArgReduction),
		cl("schedule", ArgVarList),
		cl("collapse", ArgIntExpr),
		cl("ordered", ArgNone),
		cl("nowait", ArgNone),
	}
	ompTargetClauses = []Clause{
		cl("if", ArgIfExpr),
		cl("device", ArgIntExpr),
		cl("map", ArgMap),
		cl("private", ArgVarList),
		cl("firstprivate", ArgVarList),
		cl("defaultmap", ArgVarList),
		cl("nowait", ArgNone),
		cl("depend", ArgVarList),
		cl("is_device_ptr", ArgVarList),
	}
	ompTeamsClauses = []Clause{
		cl("num_teams", ArgIntExpr),
		cl("thread_limit", ArgIntExpr),
		cl("default", ArgVarList),
		cl("private", ArgVarList),
		cl("firstprivate", ArgVarList),
		cl("shared", ArgVarList),
		cl("reduction", ArgReduction),
	}
	ompSimdClauses = []Clause{
		cl("safelen", ArgIntExpr),
		cl("simdlen", ArgIntExpr),
		cl("linear", ArgVarList),
		cl("aligned", ArgVarList),
		cl("private", ArgVarList),
		cl("lastprivate", ArgVarList),
		cl("reduction", ArgReduction),
		cl("collapse", ArgIntExpr),
	}
)

func merge(groups ...[]Clause) map[string]ClauseArg {
	var all []Clause
	for _, g := range groups {
		all = append(all, g...)
	}
	return clauseSet(all...)
}

// OpenMPSpec returns the OpenMP specification table restricted to
// version 4.5 and below, matching the paper's Part-Two constraint that
// every feature present be fully supported by the LLVM offloading
// compiler.
func OpenMPSpec() *Spec {
	distClauses := []Clause{
		cl("private", ArgVarList), cl("firstprivate", ArgVarList),
		cl("lastprivate", ArgVarList), cl("collapse", ArgIntExpr),
		cl("dist_schedule", ArgVarList),
	}
	return buildSpec(OpenMP, 45, []*Directive{
		{Name: "parallel", Clauses: merge(ompParallelClauses), Association: AssocBlock, Version: 10},
		{Name: "for", Clauses: merge(ompForClauses), Association: AssocLoop, Version: 10},
		{Name: "parallel for", Clauses: merge(ompParallelClauses, ompForClauses), Association: AssocLoop, Version: 10},
		{Name: "simd", Clauses: merge(ompSimdClauses), Association: AssocLoop, Version: 40},
		{Name: "for simd", Clauses: merge(ompForClauses, ompSimdClauses), Association: AssocLoop, Version: 40},
		{Name: "parallel for simd", Clauses: merge(ompParallelClauses, ompForClauses, ompSimdClauses), Association: AssocLoop, Version: 40},
		{Name: "sections", Clauses: merge(ompForClauses[:4:4]), Association: AssocBlock, Version: 10},
		{Name: "section", Clauses: clauseSet(), Association: AssocBlock, Version: 10},
		{Name: "single", Clauses: clauseSet(cl("private", ArgVarList), cl("firstprivate", ArgVarList), cl("nowait", ArgNone)), Association: AssocBlock, Version: 10},
		{Name: "master", Clauses: clauseSet(), Association: AssocBlock, Version: 10},
		{Name: "critical", Clauses: clauseSet(), Association: AssocBlock, Version: 10},
		{Name: "barrier", Clauses: clauseSet(), Association: AssocNone, Standalone: true, Version: 10},
		{Name: "taskwait", Clauses: clauseSet(), Association: AssocNone, Standalone: true, Version: 30},
		{Name: "task", Clauses: clauseSet(cl("if", ArgIfExpr), cl("private", ArgVarList), cl("firstprivate", ArgVarList), cl("shared", ArgVarList), cl("depend", ArgVarList), cl("untied", ArgNone), cl("final", ArgIfExpr), cl("priority", ArgIntExpr)), Association: AssocBlock, Version: 30},
		{Name: "atomic", Clauses: clauseSet(cl("read", ArgNone), cl("write", ArgNone), cl("update", ArgNone), cl("capture", ArgNone), cl("seq_cst", ArgNone)), Association: AssocStatement, Version: 10},
		{Name: "flush", Clauses: clauseSet(), Association: AssocNone, Standalone: true, Version: 10},
		{Name: "ordered", Clauses: clauseSet(cl("simd", ArgNone), cl("threads", ArgNone)), Association: AssocBlock, Version: 10},
		{Name: "target", Clauses: merge(ompTargetClauses), Association: AssocBlock, Version: 40},
		{Name: "target data", Clauses: clauseSet(cl("if", ArgIfExpr), cl("device", ArgIntExpr), cl("map", ArgMap), cl("use_device_ptr", ArgVarList)), Association: AssocBlock, Version: 40},
		{Name: "target enter data", Clauses: clauseSet(cl("if", ArgIfExpr), cl("device", ArgIntExpr), cl("map", ArgMap), cl("nowait", ArgNone), cl("depend", ArgVarList)), Association: AssocNone, Standalone: true, Version: 45},
		{Name: "target exit data", Clauses: clauseSet(cl("if", ArgIfExpr), cl("device", ArgIntExpr), cl("map", ArgMap), cl("nowait", ArgNone), cl("depend", ArgVarList)), Association: AssocNone, Standalone: true, Version: 45},
		{Name: "target update", Clauses: clauseSet(cl("if", ArgIfExpr), cl("device", ArgIntExpr), cl("to", ArgVarList), cl("from", ArgVarList), cl("nowait", ArgNone), cl("depend", ArgVarList)), Association: AssocNone, Standalone: true, Version: 40},
		{Name: "teams", Clauses: merge(ompTeamsClauses), Association: AssocBlock, Version: 40},
		{Name: "distribute", Clauses: clauseSet(distClauses...), Association: AssocLoop, Version: 40},
		{Name: "target teams", Clauses: merge(ompTargetClauses, ompTeamsClauses), Association: AssocBlock, Version: 40},
		{Name: "teams distribute", Clauses: merge(ompTeamsClauses, distClauses), Association: AssocLoop, Version: 40},
		{Name: "target teams distribute", Clauses: merge(ompTargetClauses, ompTeamsClauses, distClauses), Association: AssocLoop, Version: 40},
		{Name: "teams distribute parallel for", Clauses: merge(ompTeamsClauses, distClauses, ompParallelClauses, ompForClauses), Association: AssocLoop, Version: 40},
		{Name: "target teams distribute parallel for", Clauses: merge(ompTargetClauses, ompTeamsClauses, distClauses, ompParallelClauses, ompForClauses), Association: AssocLoop, Version: 40},
		{Name: "target parallel for", Clauses: merge(ompTargetClauses, ompParallelClauses, ompForClauses), Association: AssocLoop, Version: 45},
		{Name: "target parallel", Clauses: merge(ompTargetClauses, ompParallelClauses), Association: AssocBlock, Version: 45},
		{Name: "declare target", Clauses: clauseSet(cl("to", ArgVarList), cl("link", ArgVarList)), Association: AssocNone, Standalone: true, Version: 40},
		{Name: "end declare target", Clauses: clauseSet(), Association: AssocNone, Standalone: true, Version: 40},
		{Name: "threadprivate", Clauses: clauseSet(), Association: AssocNone, Standalone: true, Version: 10},
	})
}

// ForDialect returns the specification for the given dialect.
func ForDialect(d Dialect) *Spec {
	if d == OpenACC {
		return OpenACCSpec()
	}
	return OpenMPSpec()
}

// MapTypes lists the OpenMP map-type keywords valid in <= 4.5.
var MapTypes = []string{"to", "from", "tofrom", "alloc", "release", "delete"}

// ValidMapType reports whether mt is a valid OpenMP map-type keyword.
func ValidMapType(mt string) bool {
	for _, v := range MapTypes {
		if v == mt {
			return true
		}
	}
	return false
}

// ValidReductionOp reports whether op is a reduction operator both
// simulated compilers accept.
func ValidReductionOp(op string) bool {
	for _, v := range ReductionOps {
		if v == op {
			return true
		}
	}
	return false
}
