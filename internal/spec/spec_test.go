package spec

import (
	"strings"
	"testing"
)

func TestDialectStrings(t *testing.T) {
	if OpenACC.String() != "OpenACC" || OpenMP.String() != "OpenMP" {
		t.Fatal("dialect names wrong")
	}
	if OpenACC.Sentinel() != "acc" || OpenMP.Sentinel() != "omp" {
		t.Fatal("sentinels wrong")
	}
	if OpenACC.FortranSentinel() != "!$acc" || OpenMP.FortranSentinel() != "!$omp" {
		t.Fatal("fortran sentinels wrong")
	}
	if got := Dialect(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown dialect string = %q", got)
	}
}

func TestOpenACCCoreDirectives(t *testing.T) {
	s := OpenACCSpec()
	for _, name := range []string{
		"parallel", "kernels", "serial", "parallel loop", "kernels loop",
		"loop", "data", "enter data", "exit data", "update", "atomic",
		"wait", "routine", "declare", "host_data",
	} {
		if _, ok := s.Lookup(name); !ok {
			t.Errorf("OpenACC missing directive %q", name)
		}
	}
	if _, ok := s.Lookup("target"); ok {
		t.Error("OpenACC spec must not contain OpenMP 'target'")
	}
	if _, ok := s.Lookup("parallell"); ok {
		t.Error("misspelled directive looked up successfully")
	}
}

func TestOpenMPCoreDirectives(t *testing.T) {
	s := OpenMPSpec()
	for _, name := range []string{
		"parallel", "for", "parallel for", "target", "target data",
		"target teams distribute parallel for", "teams", "distribute",
		"atomic", "critical", "barrier", "single", "master", "simd",
		"target enter data", "target exit data", "target update",
	} {
		if _, ok := s.Lookup(name); !ok {
			t.Errorf("OpenMP missing directive %q", name)
		}
	}
	if _, ok := s.Lookup("kernels"); ok {
		t.Error("OpenMP spec must not contain OpenACC 'kernels'")
	}
}

func TestOpenMPVersionGate(t *testing.T) {
	s := OpenMPSpec()
	if s.MaxVersion != 45 {
		t.Fatalf("OpenMP MaxVersion = %d, want 45 (paper restricts to <= 4.5)", s.MaxVersion)
	}
	// Everything in the table must be accepted by a 4.5 compiler.
	for _, name := range s.Directives() {
		d, _ := s.Lookup(name)
		if d.Version > s.MaxVersion {
			t.Errorf("directive %q has version %d > max %d", name, d.Version, s.MaxVersion)
		}
	}
}

func TestClauseTables(t *testing.T) {
	acc := OpenACCSpec()
	cases := []struct {
		dir, clause string
		want        bool
	}{
		{"parallel loop", "reduction", true},
		{"parallel loop", "copyin", true},
		{"parallel loop", "gang", true},
		{"parallel", "copyout", true},
		{"parallel", "gang", false}, // gang is a loop clause
		{"data", "copy", true},
		{"data", "num_gangs", false},
		{"update", "host", true},
		{"update", "copyin", false},
		{"enter data", "copyin", true},
		{"enter data", "copyout", false},
		{"exit data", "copyout", true},
		{"exit data", "copyin", false},
		{"atomic", "update", true},
		{"atomic", "copy", false},
	}
	for _, c := range cases {
		if got := acc.HasClause(c.dir, c.clause); got != c.want {
			t.Errorf("OpenACC %s/%s = %v, want %v", c.dir, c.clause, got, c.want)
		}
	}

	omp := OpenMPSpec()
	ompCases := []struct {
		dir, clause string
		want        bool
	}{
		{"parallel for", "reduction", true},
		{"parallel for", "schedule", true},
		{"parallel for", "map", false},
		{"target", "map", true},
		{"target", "schedule", false},
		{"target teams distribute parallel for", "map", true},
		{"target teams distribute parallel for", "num_teams", true},
		{"target teams distribute parallel for", "schedule", true},
		{"for", "num_threads", false},
		{"parallel", "num_threads", true},
		{"critical", "private", false},
		{"target update", "to", true},
		{"target update", "map", false},
	}
	for _, c := range ompCases {
		if got := omp.HasClause(c.dir, c.clause); got != c.want {
			t.Errorf("OpenMP %s/%s = %v, want %v", c.dir, c.clause, got, c.want)
		}
	}
}

func TestHasClauseUnknownDirective(t *testing.T) {
	if OpenMPSpec().HasClause("no-such-directive", "private") {
		t.Fatal("HasClause returned true for unknown directive")
	}
}

func TestLongestDirective(t *testing.T) {
	omp := OpenMPSpec()
	cases := []struct {
		words    []string
		wantName string
		wantN    int
	}{
		{[]string{"target", "teams", "distribute", "parallel", "for", "map(tofrom:a)"}, "target teams distribute parallel for", 5},
		{[]string{"target", "map(to:a)"}, "target", 1},
		{[]string{"parallel", "for", "reduction(+:sum)"}, "parallel for", 2},
		{[]string{"parallel", "num_threads(4)"}, "parallel", 1},
		{[]string{"target", "enter", "data", "map(to:a)"}, "target enter data", 3},
	}
	for _, c := range cases {
		d, n, ok := omp.LongestDirective(c.words)
		if !ok {
			t.Errorf("LongestDirective(%v) failed", c.words)
			continue
		}
		if d.Name != c.wantName || n != c.wantN {
			t.Errorf("LongestDirective(%v) = %q/%d, want %q/%d", c.words, d.Name, n, c.wantName, c.wantN)
		}
	}
	if _, _, ok := omp.LongestDirective([]string{"bogus", "thing"}); ok {
		t.Error("LongestDirective matched a bogus name")
	}
	if _, _, ok := omp.LongestDirective(nil); ok {
		t.Error("LongestDirective matched empty input")
	}
}

func TestLongestDirectiveOpenACC(t *testing.T) {
	acc := OpenACCSpec()
	d, n, ok := acc.LongestDirective([]string{"parallel", "loop", "gang"})
	if !ok || d.Name != "parallel loop" || n != 2 {
		t.Fatalf("got %v/%d/%v, want parallel loop/2/true", d, n, ok)
	}
	d, n, ok = acc.LongestDirective([]string{"enter", "data", "copyin(a)"})
	if !ok || d.Name != "enter data" || n != 2 {
		t.Fatalf("got %v/%d/%v, want enter data/2/true", d, n, ok)
	}
}

func TestDirectivesSortedAndComplete(t *testing.T) {
	for _, s := range []*Spec{OpenACCSpec(), OpenMPSpec()} {
		names := s.Directives()
		if len(names) < 15 {
			t.Errorf("%v spec suspiciously small: %d directives", s.Dialect, len(names))
		}
		for i := 1; i < len(names); i++ {
			if names[i-1] >= names[i] {
				t.Errorf("%v Directives() not sorted at %d: %q >= %q", s.Dialect, i, names[i-1], names[i])
			}
		}
		for _, n := range names {
			if _, ok := s.Lookup(n); !ok {
				t.Errorf("%v: Directives() lists %q but Lookup fails", s.Dialect, n)
			}
		}
	}
}

func TestLookupNormalisesWhitespace(t *testing.T) {
	omp := OpenMPSpec()
	if _, ok := omp.Lookup("  parallel   for "); !ok {
		t.Fatal("Lookup should normalise interior/exterior whitespace")
	}
}

func TestAssociations(t *testing.T) {
	acc := OpenACCSpec()
	omp := OpenMPSpec()
	cases := []struct {
		spec *Spec
		dir  string
		want Association
	}{
		{acc, "parallel loop", AssocLoop},
		{acc, "parallel", AssocBlock},
		{acc, "update", AssocNone},
		{acc, "atomic", AssocStatement},
		{omp, "parallel for", AssocLoop},
		{omp, "target", AssocBlock},
		{omp, "barrier", AssocNone},
		{omp, "atomic", AssocStatement},
	}
	for _, c := range cases {
		d, ok := c.spec.Lookup(c.dir)
		if !ok {
			t.Fatalf("missing %q", c.dir)
		}
		if d.Association != c.want {
			t.Errorf("%v %q association = %v, want %v", c.spec.Dialect, c.dir, d.Association, c.want)
		}
	}
}

func TestStandaloneFlags(t *testing.T) {
	acc := OpenACCSpec()
	for _, name := range []string{"update", "wait", "enter data", "exit data", "routine", "declare"} {
		d, _ := acc.Lookup(name)
		if d == nil || !d.Standalone {
			t.Errorf("OpenACC %q should be standalone", name)
		}
	}
	omp := OpenMPSpec()
	for _, name := range []string{"barrier", "taskwait", "flush", "target update", "threadprivate"} {
		d, _ := omp.Lookup(name)
		if d == nil || !d.Standalone {
			t.Errorf("OpenMP %q should be standalone", name)
		}
	}
	d, _ := omp.Lookup("parallel")
	if d.Standalone {
		t.Error("OpenMP parallel must not be standalone")
	}
}

func TestMapTypes(t *testing.T) {
	for _, mt := range []string{"to", "from", "tofrom", "alloc"} {
		if !ValidMapType(mt) {
			t.Errorf("map type %q should be valid", mt)
		}
	}
	for _, mt := range []string{"always", "close", "bogus", ""} {
		if ValidMapType(mt) {
			t.Errorf("map type %q should be invalid", mt)
		}
	}
}

func TestReductionOps(t *testing.T) {
	for _, op := range []string{"+", "*", "max", "min"} {
		if !ValidReductionOp(op) {
			t.Errorf("reduction op %q should be valid", op)
		}
	}
	if ValidReductionOp("-") || ValidReductionOp("xor") {
		t.Error("invalid reduction op accepted")
	}
}

func TestForDialect(t *testing.T) {
	if ForDialect(OpenACC).Dialect != OpenACC {
		t.Fatal("ForDialect(OpenACC) wrong")
	}
	if ForDialect(OpenMP).Dialect != OpenMP {
		t.Fatal("ForDialect(OpenMP) wrong")
	}
}
