package fault

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func fires(in *Injector, point string, ops int) []int {
	var hit []int
	for i := 1; i <= ops; i++ {
		if in.At(point).Kind != None {
			hit = append(hit, i)
		}
	}
	return hit
}

func TestRateDecisionsAreDeterministic(t *testing.T) {
	mk := func() *Injector { return New(42, &Rule{Point: "p", Kind: Reset, Rate: 0.1}) }
	a := fires(mk(), "p", 2000)
	b := fires(mk(), "p", 2000)
	if len(a) == 0 {
		t.Fatal("10% rule never fired in 2000 ops")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed fired %d vs %d times", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fire %d: op %d vs %d", i, a[i], b[i])
		}
	}
	// ~10% of 2000 with generous tolerance: determinism is the
	// contract, the rate only has to be in the right neighbourhood.
	if len(a) < 120 || len(a) > 280 {
		t.Errorf("10%% rule fired %d/2000 times", len(a))
	}
	// A different seed fires a different op set.
	c := fires(New(43, &Rule{Point: "p", Kind: Reset, Rate: 0.1}), "p", 2000)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 42 and 43 drew identical fault schedules")
	}
}

func TestEveryNthFiresOnSchedule(t *testing.T) {
	in := New(1, &Rule{Point: "p", Kind: Err, Every: 3})
	got := fires(in, "p", 10)
	want := []int{3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("fired at %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired at %v, want %v", got, want)
		}
	}
}

func TestCountCapsFires(t *testing.T) {
	in := New(1, &Rule{Point: "p", Kind: Err, Every: 1, Count: 2})
	if got := len(fires(in, "p", 100)); got != 2 {
		t.Fatalf("count-2 rule fired %d times", got)
	}
}

func TestCountCapUnderConcurrency(t *testing.T) {
	in := New(1, &Rule{Point: "p", Kind: Err, Every: 1, Count: 5})
	var wg sync.WaitGroup
	var hits sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 0
			for i := 0; i < 100; i++ {
				if in.At("p").Kind != None {
					n++
				}
			}
			hits.Store(g, n)
		}(g)
	}
	wg.Wait()
	total := 0
	hits.Range(func(_, v any) bool { total += v.(int); return true })
	if total != 5 {
		t.Fatalf("count-5 rule fired %d times across goroutines", total)
	}
}

func TestPrefixMatchingAndPerPointCounters(t *testing.T) {
	in := New(1, &Rule{Point: "fleet.probe", Kind: Flap, Every: 2})
	// Each full point name counts its own operations: both replicas
	// flap on their own 2nd probe, not on a shared counter.
	if d := in.At("fleet.probe:a"); d.Kind != None {
		t.Fatal("replica a op 1 fired")
	}
	if d := in.At("fleet.probe:b"); d.Kind != None {
		t.Fatal("replica b op 1 fired")
	}
	if d := in.At("fleet.probe:a"); d.Kind != Flap {
		t.Fatal("replica a op 2 did not fire")
	}
	if d := in.At("fleet.probe:b"); d.Kind != Flap {
		t.Fatal("replica b op 2 did not fire")
	}
	// Exact-point rules do not bleed onto other points.
	in2 := New(1, &Rule{Point: "fleet.probe:a", Kind: Flap, Every: 1})
	if d := in2.At("fleet.probe:b"); d.Kind != None {
		t.Fatal("rule for replica a fired at replica b")
	}
	if d := in2.At("fleet.probes"); d.Kind != None {
		t.Fatal("prefix matched without a ':' boundary")
	}
}

func TestInjectedCounts(t *testing.T) {
	in := New(1, &Rule{Point: "p", Kind: Err, Every: 2})
	fires(in, "p", 10)
	pcs := in.Injected()
	if len(pcs) != 1 || pcs[0].Point != "p" || pcs[0].Count != 5 {
		t.Fatalf("Injected() = %+v, want [{p 5}]", pcs)
	}
	if got := in.InjectedTotal(); got != 5 {
		t.Fatalf("InjectedTotal() = %d, want 5", got)
	}
}

func TestNilInjectorInert(t *testing.T) {
	var in *Injector
	if d := in.At("p"); d.Kind != None {
		t.Fatal("nil injector fired")
	}
	if in.Injected() != nil || in.InjectedTotal() != 0 || in.Seed() != 0 {
		t.Fatal("nil injector reported state")
	}
	base := http.DefaultTransport
	if Transport(nil, "p", base) != base {
		t.Error("nil-injector Transport wrapped the base")
	}
	h := http.NotFoundHandler()
	if Middleware(nil, "p", h) == nil {
		t.Error("nil-injector Middleware returned nil")
	}
	if Hook(nil, "store") != nil {
		t.Error("nil-injector Hook returned a function")
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("42:remote.send=500@0.05,remote.send=torn#1,daemon.handler=latency@3/200ms,fleet.probe=flap@2,store.write=err#1")
	if err != nil {
		t.Fatal(err)
	}
	if in.Seed() != 42 {
		t.Fatalf("seed %d, want 42", in.Seed())
	}
	if len(in.rules) != 5 {
		t.Fatalf("parsed %d rules, want 5", len(in.rules))
	}
	r := in.rules[0]
	if r.Point != "remote.send" || r.Kind != HTTP500 || r.Rate != 0.05 || r.Every != 0 {
		t.Errorf("rule 0 = %+v", r)
	}
	r = in.rules[1]
	if r.Kind != Torn || r.Count != 1 {
		t.Errorf("rule 1 = %+v", r)
	}
	r = in.rules[2]
	if r.Kind != Latency || r.Every != 3 || r.Param != 200*time.Millisecond {
		t.Errorf("rule 2 = %+v", r)
	}
	r = in.rules[3]
	if r.Kind != Flap || r.Every != 2 {
		t.Errorf("rule 3 = %+v", r)
	}
	r = in.rules[4]
	if r.Point != "store.write" || r.Kind != Err || r.Count != 1 {
		t.Errorf("rule 4 = %+v", r)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"",
		"42",
		"x:p=err",
		"42:p",
		"42:=err",
		"42:p=nosuchkind",
		"42:p=err@0",
		"42:p=err@1.5",
		"42:p=err#0",
		"42:p=latency/xyz",
		"42:",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestTransportKinds(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"response":"a long enough payload to survive halving"}`))
	}))
	defer backend.Close()

	get := func(rt http.RoundTripper) (*http.Response, error) {
		req, _ := http.NewRequest(http.MethodGet, backend.URL, nil)
		return rt.RoundTrip(req)
	}

	// Reset: error before the wire, recognisable via ErrInjected.
	in := New(1, &Rule{Point: "remote.send", Kind: Reset, Every: 1})
	if _, err := get(Transport(in, "remote.send", nil)); !errors.Is(err, ErrInjected) {
		t.Fatalf("reset: got %v, want ErrInjected", err)
	}

	// HTTP500: synthesized response, backend never reached.
	in = New(1, &Rule{Point: "remote.send", Kind: HTTP500, Every: 1})
	resp, err := get(Transport(in, "remote.send", nil))
	if err != nil || resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("500: got %v, %v", resp, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "injected") {
		t.Errorf("500 body %q", body)
	}

	// Torn: a real response whose body ends mid-JSON.
	in = New(1, &Rule{Point: "remote.send", Kind: Torn, Every: 1})
	resp, err = get(Transport(in, "remote.send", nil))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]string
	derr := json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if derr == nil {
		t.Fatal("torn body decoded cleanly")
	}

	// No rule for the point: the transport passes through.
	in = New(1, &Rule{Point: "elsewhere", Kind: Reset, Every: 1})
	resp, err = get(Transport(in, "remote.send", nil))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("passthrough: got %v, %v", resp, err)
	}
	if derr := json.NewDecoder(resp.Body).Decode(&out); derr != nil {
		t.Fatalf("passthrough body: %v", derr)
	}
	resp.Body.Close()
}

func TestMiddlewareKinds(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	})

	in := New(1, &Rule{Point: "daemon.handler", Kind: HTTP500, Every: 1})
	rec := httptest.NewRecorder()
	Middleware(in, "daemon.handler", next).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("500 middleware answered %d", rec.Code)
	}

	in = New(1, &Rule{Point: "daemon.handler", Kind: Latency, Every: 1, Param: 20 * time.Millisecond})
	rec = httptest.NewRecorder()
	start := time.Now()
	Middleware(in, "daemon.handler", next).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "ok" {
		t.Fatalf("latency middleware answered %d %q", rec.Code, rec.Body.String())
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Error("latency middleware did not delay")
	}

	// Hang with a request context: returns when the request dies, never
	// reaching the handler.
	in = New(1, &Rule{Point: "daemon.handler", Kind: Hang, Every: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	rec = httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		Middleware(in, "daemon.handler", next).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil).WithContext(ctx))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("hang middleware did not release on context end")
	}
	if rec.Body.String() == "ok" {
		t.Error("hung request still produced a response")
	}
}

type echoLLM struct{}

func (echoLLM) Complete(prompt string) string { return "resp:" + prompt }

type echoBatchLLM struct{ echoLLM }

func (echoBatchLLM) CompleteBatch(_ context.Context, prompts []string) ([]string, error) {
	out := make([]string, len(prompts))
	for i, p := range prompts {
		out[i] = "resp:" + p
	}
	return out, nil
}

func TestLLMMalformed(t *testing.T) {
	in := New(1, &Rule{Point: "daemon.complete", Kind: Malformed, Every: 2})
	llm := LLM(in, "daemon.complete", echoLLM{})
	if got := llm.Complete("a"); got != "resp:a" {
		t.Fatalf("op 1 corrupted: %q", got)
	}
	if got := llm.Complete("b"); got != MalformedCompletion {
		t.Fatalf("op 2 not corrupted: %q", got)
	}

	// Batch capability preserved, one decision per prompt.
	in = New(1, &Rule{Point: "daemon.complete", Kind: Malformed, Every: 2})
	wrapped := LLM(in, "daemon.complete", echoBatchLLM{})
	bl, ok := wrapped.(interface {
		CompleteBatch(ctx context.Context, prompts []string) ([]string, error)
	})
	if !ok {
		t.Fatal("batch capability lost")
	}
	resps, err := bl.CompleteBatch(context.Background(), []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"resp:a", MalformedCompletion, "resp:c", MalformedCompletion}
	for i := range want {
		if resps[i] != want[i] {
			t.Fatalf("batch[%d] = %q, want %q", i, resps[i], want[i])
		}
	}

	// Non-batch inner must not grow a batch method.
	if _, ok := LLM(in, "p", echoLLM{}).(interface {
		CompleteBatch(ctx context.Context, prompts []string) ([]string, error)
	}); ok {
		t.Error("wrapper invented batch capability")
	}
}

func TestHook(t *testing.T) {
	in := New(1, &Rule{Point: "store.write", Kind: Err, Every: 1, Count: 1})
	hook := Hook(in, "store")
	if err := hook("sync"); err != nil {
		t.Fatalf("unmatched op failed: %v", err)
	}
	if err := hook("write"); !errors.Is(err, ErrInjected) {
		t.Fatalf("write: got %v, want ErrInjected", err)
	}
	if err := hook("write"); err != nil {
		t.Fatalf("count-1 rule fired twice: %v", err)
	}
}
