// Package fault is the deterministic, seeded fault-injection
// subsystem behind the chaos test suite and the daemons' -fault flag.
//
// An Injector holds a parsed fault schedule: rules that name an
// injection point ("remote.send", "daemon.handler", "store.write",
// "fleet.probe", …), a fault kind, and a firing discipline — a
// probability, an every-Nth-operation cadence, or both bounded by a
// total fire count. Instrumented code asks At(point) before each
// operation; the decision is a pure function of the injector seed,
// the point name, and that point's operation index, so a chaos run
// under a given schedule injects exactly the same faults every time,
// regardless of wall clock or goroutine interleaving. (Under
// concurrency the set of faulted operation indexes is deterministic;
// which request draws which index may vary, which is exactly the
// nondeterminism the resilience layer must absorb.)
//
// A rule point matches an operation point exactly, or as a
// ':'-delimited prefix: the rule "fleet.probe" fires at
// "fleet.probe:127.0.0.1:8001" and every other replica's probes,
// while "fleet.probe:127.0.0.1:8001" flaps only that replica.
// Operation indexes are always counted per full point name.
//
// A nil *Injector is inert everywhere — At answers None, the
// wrapping helpers (Transport, Middleware, LLM, Hook) return their
// argument unchanged — so production call sites thread the injector
// unconditionally and pay nothing when chaos is off.
package fault

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/judge"
)

// Kind enumerates the injectable fault kinds. Not every kind is
// meaningful at every point: the helper wrapping a tier documents
// which kinds it honours and ignores the rest.
type Kind uint8

const (
	None      Kind = iota
	Latency        // delay the operation by Param, then let it proceed
	Reset          // fail the operation like a connection reset
	HTTP500        // answer with a synthesized 500 without reaching the target
	Torn           // truncate the response body mid-JSON
	Hang           // block for Param (or until the request context ends)
	Malformed      // replace a judge completion with undecodable garbage
	Err            // fail the operation with a generic injected error
	Flap           // fail a health probe (the replica flaps)
)

var kindNames = map[Kind]string{
	None: "none", Latency: "latency", Reset: "reset", HTTP500: "500",
	Torn: "torn", Hang: "hang", Malformed: "malformed", Err: "err", Flap: "flap",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

func kindFromString(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return k, true
		}
	}
	return None, false
}

// Rule is one schedule entry: fire Kind at operations matching Point,
// on the configured cadence.
type Rule struct {
	// Point names the injection point, exactly or as a ':'-delimited
	// prefix ("fleet.probe" matches "fleet.probe:<addr>").
	Point string
	Kind  Kind
	// Rate fires with this probability per operation (0 < Rate <= 1),
	// decided by hashing (seed, point, op index) — deterministic, not
	// sampled. Ignored when Every is set.
	Rate float64
	// Every fires on every Every-th operation at the point (the
	// Every-th, 2·Every-th, …). Every == 1 fires always. When both
	// Every and Rate are zero the rule fires on every operation.
	Every int
	// Count caps the rule's total fires; 0 means unlimited.
	Count int64
	// Param is the duration operand for Latency and Hang.
	Param time.Duration

	fired atomic.Int64
}

// Decision is the outcome of one At call.
type Decision struct {
	Kind  Kind
	Param time.Duration
}

// Injector decides fault injection for named points under one seed.
// Construct with New or Parse; the zero value and nil are inert.
type Injector struct {
	seed  uint64
	rules []*Rule

	mu     sync.Mutex
	ops    map[string]*atomic.Int64 // per-point operation index
	counts map[string]*atomic.Int64 // per-point injected-fault count
}

// New builds an injector from a seed and a rule set. Rules are
// consulted in order; the first that matches and fires wins.
func New(seed uint64, rules ...*Rule) *Injector {
	return &Injector{
		seed:   seed,
		rules:  rules,
		ops:    map[string]*atomic.Int64{},
		counts: map[string]*atomic.Int64{},
	}
}

// Seed reports the injector's schedule seed.
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

func (in *Injector) counter(m map[string]*atomic.Int64, point string) *atomic.Int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	c, ok := m[point]
	if !ok {
		c = &atomic.Int64{}
		m[point] = c
	}
	return c
}

// matches reports whether a rule point covers an operation point:
// exact, or a prefix ending at a ':' boundary.
func matches(rulePoint, point string) bool {
	if rulePoint == point {
		return true
	}
	return strings.HasPrefix(point, rulePoint+":")
}

// splitmix64 is the avalanche behind rate decisions: uniform output
// from structured (seed, point, index) input.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func pointHash(point string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, point)
	return h.Sum64()
}

// At advances the point's operation index and decides whether this
// operation draws a fault. Safe for concurrent use; a nil injector
// always answers None.
func (in *Injector) At(point string) Decision {
	if in == nil {
		return Decision{}
	}
	n := in.counter(in.ops, point).Add(1) // 1-based operation index
	for _, r := range in.rules {
		if r.Kind == None || !matches(r.Point, point) {
			continue
		}
		fire := false
		switch {
		case r.Every > 0:
			fire = n%int64(r.Every) == 0
		case r.Rate > 0:
			h := splitmix64(in.seed ^ pointHash(point) ^ uint64(n))
			fire = float64(h>>11)/(1<<53) < r.Rate
		default:
			fire = true
		}
		if !fire {
			continue
		}
		if r.Count > 0 {
			// Respect the fire cap; a lost race here returns the slot.
			if fired := r.fired.Add(1); fired > r.Count {
				r.fired.Add(-1)
				continue
			}
		} else {
			r.fired.Add(1)
		}
		in.counter(in.counts, point).Add(1)
		return Decision{Kind: r.Kind, Param: r.Param}
	}
	return Decision{}
}

// PointCount is one injection point's injected-fault tally.
type PointCount struct {
	Point string
	Count int64
}

// Injected reports how many faults each point has drawn so far,
// sorted by point name for stable metrics exposition. Points that
// were consulted but never drew a fault are omitted.
func (in *Injector) Injected() []PointCount {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	out := make([]PointCount, 0, len(in.counts))
	for p, c := range in.counts {
		if n := c.Load(); n > 0 {
			out = append(out, PointCount{Point: p, Count: n})
		}
	}
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out
}

// InjectedTotal reports the total faults injected across all points.
func (in *Injector) InjectedTotal() int64 {
	var total int64
	for _, pc := range in.Injected() {
		total += pc.Count
	}
	return total
}

// Parse reads the -fault flag syntax: "<seed>:<schedule>" where the
// schedule is a comma-separated list of rules, each
//
//	point=kind[@freq][/dur][#count]
//
// freq is a probability for values in (0, 1) ("@0.05" fires 5% of
// operations) or an every-Nth cadence for integer values >= 1
// ("@3" fires every 3rd operation); absent, the rule fires on every
// operation. dur is a Go duration operand for latency/hang
// ("/200ms"). count caps total fires ("#1" fires at most once).
// Kinds: latency, reset, 500, torn, hang, malformed, err, flap.
//
// Example:
//
//	42:remote.send=500@0.05,remote.send=torn#1,fleet.probe=flap@2,store.write=err#1
func Parse(s string) (*Injector, error) {
	seedStr, schedule, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("fault: %q is not <seed>:<schedule>", s)
	}
	seed, err := strconv.ParseUint(seedStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("fault: bad seed %q: %v", seedStr, err)
	}
	var rules []*Rule
	for _, entry := range strings.Split(schedule, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		point, spec, ok := strings.Cut(entry, "=")
		if !ok || point == "" {
			return nil, fmt.Errorf("fault: rule %q is not point=kind[@freq][/dur][#count]", entry)
		}
		r := &Rule{Point: point}
		spec, countStr, hasCount := cutLast(spec, "#")
		if hasCount {
			r.Count, err = strconv.ParseInt(countStr, 10, 64)
			if err != nil || r.Count < 1 {
				return nil, fmt.Errorf("fault: rule %q: bad count %q", entry, countStr)
			}
		}
		spec, durStr, hasDur := cutLast(spec, "/")
		if hasDur {
			r.Param, err = time.ParseDuration(durStr)
			if err != nil {
				return nil, fmt.Errorf("fault: rule %q: bad duration %q: %v", entry, durStr, err)
			}
		}
		spec, freqStr, hasFreq := cutLast(spec, "@")
		if hasFreq {
			f, ferr := strconv.ParseFloat(freqStr, 64)
			if ferr != nil || f <= 0 {
				return nil, fmt.Errorf("fault: rule %q: bad frequency %q", entry, freqStr)
			}
			if f < 1 {
				r.Rate = f
			} else if f == float64(int64(f)) {
				r.Every = int(f)
			} else {
				return nil, fmt.Errorf("fault: rule %q: frequency %q is neither a probability (<1) nor an integer cadence", entry, freqStr)
			}
		}
		kind, ok := kindFromString(spec)
		if !ok || kind == None {
			return nil, fmt.Errorf("fault: rule %q: unknown kind %q", entry, spec)
		}
		r.Kind = kind
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: schedule %q has no rules", s)
	}
	return New(seed, rules...), nil
}

// cutLast splits s at the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// ErrInjected is the base of every error the helpers synthesize, so
// tests and logs can recognise injected failure by errors.Is.
var ErrInjected = errors.New("fault: injected failure")

func injectedErr(kind Kind, point string) error {
	return fmt.Errorf("%w: %s at %s", ErrInjected, kind, point)
}

// Transport wraps an http.RoundTripper with client-side fault
// injection at "<point>:<host>" per request. Honoured kinds: Latency
// (delay, then send), Reset (connection-reset-like error, request
// never sent), HTTP500 (synthesized 500 response, request never
// sent), Torn (real response with its body truncated mid-stream).
// A nil base means http.DefaultTransport; a nil injector returns
// base unchanged.
func Transport(in *Injector, point string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if in == nil {
		return base
	}
	return &faultTransport{in: in, point: point, base: base}
}

type faultTransport struct {
	in    *Injector
	point string
	base  http.RoundTripper
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.in.At(t.point + ":" + req.URL.Host)
	switch d.Kind {
	case Latency:
		timer := time.NewTimer(d.Param)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	case Reset:
		return nil, injectedErr(Reset, t.point)
	case HTTP500:
		body := `{"error":"fault: injected 500"}`
		return &http.Response{
			StatusCode:    http.StatusInternalServerError,
			Status:        "500 Internal Server Error",
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || d.Kind != Torn {
		return resp, err
	}
	// Torn: deliver a prefix of the real body, then cut the stream.
	// Half of a known Content-Length, else a small fixed prefix —
	// enough bytes that a JSON decoder starts parsing before the EOF.
	n := int64(16)
	if resp.ContentLength > 0 {
		n = resp.ContentLength / 2
	}
	resp.Body = &tornBody{inner: resp.Body, remaining: n}
	resp.ContentLength = -1
	resp.Header.Del("Content-Length")
	return resp, nil
}

// tornBody delivers at most remaining bytes of the wrapped body and
// then reports EOF, simulating a connection cut mid-response. Close
// still closes the real body so the connection is reclaimed.
type tornBody struct {
	inner     io.ReadCloser
	remaining int64
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= int64(n)
	return n, err
}

func (b *tornBody) Close() error { return b.inner.Close() }

// Middleware wraps an HTTP handler with server-side fault injection
// at point per request. Honoured kinds: Latency (delay, then serve),
// Hang (block for Param, or until the request context ends when
// Param is zero, then serve nothing), HTTP500 (refuse with 500).
// A nil injector returns next unchanged.
func Middleware(in *Injector, point string, next http.Handler) http.Handler {
	if in == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := in.At(point)
		switch d.Kind {
		case Latency:
			timer := time.NewTimer(d.Param)
			select {
			case <-timer.C:
			case <-r.Context().Done():
				timer.Stop()
				return
			}
		case Hang:
			if d.Param <= 0 {
				<-r.Context().Done()
				return
			}
			timer := time.NewTimer(d.Param)
			select {
			case <-timer.C:
			case <-r.Context().Done():
				timer.Stop()
			}
			return
		case HTTP500:
			http.Error(w, `{"error":"fault: injected 500"}`, http.StatusInternalServerError)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// MalformedCompletion is the garbage a Malformed fault substitutes
// for a judge completion: bytes no verdict parser accepts, so the
// vote degrades to unparsable/error and panel quorum absorbs it.
const MalformedCompletion = "\x00fault: malformed completion \xff{{{"

// LLM wraps a judge endpoint with completion corruption at point:
// a Malformed decision replaces the member's response with
// MalformedCompletion (one decision per prompt, batches included).
// The wrapper preserves the inner endpoint's ContextLLM and BatchLLM
// capabilities. A nil injector returns inner unchanged.
func LLM(in *Injector, point string, inner judge.LLM) judge.LLM {
	if in == nil {
		return inner
	}
	w := &faultLLM{in: in, point: point, inner: inner}
	if _, ok := inner.(judge.BatchLLM); ok {
		return &faultBatchLLM{faultLLM: w}
	}
	return w
}

type faultLLM struct {
	in    *Injector
	point string
	inner judge.LLM
}

func (l *faultLLM) corrupt(resp string) string {
	if l.in.At(l.point).Kind == Malformed {
		return MalformedCompletion
	}
	return resp
}

func (l *faultLLM) Complete(prompt string) string {
	return l.corrupt(l.inner.Complete(prompt))
}

func (l *faultLLM) CompleteContext(ctx context.Context, prompt string) (string, error) {
	if cl, ok := l.inner.(judge.ContextLLM); ok {
		resp, err := cl.CompleteContext(ctx, prompt)
		if err != nil {
			return "", err
		}
		return l.corrupt(resp), nil
	}
	return l.corrupt(l.inner.Complete(prompt)), nil
}

type faultBatchLLM struct {
	*faultLLM
}

func (l *faultBatchLLM) CompleteBatch(ctx context.Context, prompts []string) ([]string, error) {
	resps, err := l.inner.(judge.BatchLLM).CompleteBatch(ctx, prompts)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(resps))
	for i, r := range resps {
		out[i] = l.corrupt(r)
	}
	return out, nil
}

// Hook adapts an injector to the store's Options.FaultHook contract:
// the returned function is consulted with low-level operation names
// ("write", "sync", "rename") and fails them when "<prefix>.<op>"
// draws any fault kind. A nil injector returns nil (no hook).
func Hook(in *Injector, prefix string) func(op string) error {
	if in == nil {
		return nil
	}
	return func(op string) error {
		point := prefix + "." + op
		if d := in.At(point); d.Kind != None {
			return injectedErr(d.Kind, point)
		}
		return nil
	}
}
