package perf

// The metric-family registry: every Prometheus family the daemon and
// router /metrics endpoints can export, declared once with its type
// and HELP text. Emission sites (internal/server, internal/fleet) go
// through these defs instead of repeating name/type/help strings, so
// the registry is the single source of truth for what the system
// exports — docs/OPERATIONS.md documents exactly this list, and a
// test in this package diffs the two (a family added here without a
// runbook entry, or documented without existing, fails CI).

// FamilyDef declares one metric family: its exposition name, type
// ("counter", "gauge", or "summary"), and HELP text.
type FamilyDef struct {
	Name string
	Type string
	Help string
}

// Daemon (llm4vvd) families, labelled replica="<name>".
var (
	FamRequests         = FamilyDef{"llm4vv_requests_total", "counter", "Admitted single-prompt requests."}
	FamBatchRequests    = FamilyDef{"llm4vv_batch_requests_total", "counter", "Admitted batch requests."}
	FamRejected         = FamilyDef{"llm4vv_rejected_total", "counter", "Requests refused with 429 by admission control."}
	FamEndpointCalls    = FamilyDef{"llm4vv_endpoint_calls_total", "counter", "Calls made to the fronted endpoint."}
	FamEndpointPrompts  = FamilyDef{"llm4vv_endpoint_prompts_total", "counter", "Prompts submitted to the fronted endpoint."}
	FamCoalescedBatches = FamilyDef{"llm4vv_coalesced_batches_total", "counter", "Micro-batches that merged two or more requests."}
	FamStoreHits        = FamilyDef{"llm4vv_store_hits_total", "counter", "Prompts resolved from the run store or intra-shard dedup."}
	FamGatherDelay      = FamilyDef{"llm4vv_gather_delay_seconds", "gauge", "Current adaptive micro-batch straggler wait."}
	FamInflight         = FamilyDef{"llm4vv_inflight_prompts", "gauge", "Prompts admitted and not yet answered."}
	FamStageSeconds     = FamilyDef{"llm4vv_stage_seconds", "summary", "Per-stage latency quantiles (resolve = one shard, endpoint = one fronted call)."}
)

// Daemon run-store families (exported only when the daemon holds a
// store), labelled replica="<name>".
var (
	FamStoreKeys        = FamilyDef{"llm4vv_store_keys", "gauge", "Distinct keys in the run store (active + sealed segments)."}
	FamStoreSegments    = FamilyDef{"llm4vv_store_segments", "gauge", "Sealed segment files in the run store."}
	FamStoreActiveBytes = FamilyDef{"llm4vv_store_active_bytes", "gauge", "Bytes in the run store's active segment (buffered included)."}
	FamStoreDropped     = FamilyDef{"llm4vv_store_dropped_lines", "gauge", "Corrupt or truncated store lines skipped at open."}
)

// Router (llm4vv-router) families, labelled router="<name>" (some
// additionally priority="<class>" or replica="<addr>").
var (
	FamRouterAdmitted        = FamilyDef{"llm4vv_router_admitted_total", "counter", "Prompts admitted, by priority class."}
	FamRouterShed            = FamilyDef{"llm4vv_router_shed_total", "counter", "Requests refused with 429 at the class admission ceilings."}
	FamRouterQuotaRejected   = FamilyDef{"llm4vv_router_quota_rejected_total", "counter", "Requests refused for exceeding a per-client quota."}
	FamRouterRequests        = FamilyDef{"llm4vv_router_requests_total", "counter", "Single-prompt routing requests."}
	FamRouterBatchRequests   = FamilyDef{"llm4vv_router_batch_requests_total", "counter", "Batch routing requests."}
	FamRouterRoutedPrompts   = FamilyDef{"llm4vv_router_routed_prompts_total", "counter", "Prompts delivered to replicas."}
	FamRouterFailovers       = FamilyDef{"llm4vv_router_failovers_total", "counter", "Requests moved to a ring successor after a replica failure."}
	FamRouterSpills          = FamilyDef{"llm4vv_router_spills_total", "counter", "Bounded-load placements past an overloaded owner."}
	FamRouterInflight        = FamilyDef{"llm4vv_router_inflight_prompts", "gauge", "Prompts admitted and not yet answered."}
	FamRouterReplicaHealthy  = FamilyDef{"llm4vv_router_replica_healthy", "gauge", "Replica ring membership: 1 healthy, 0 evicted."}
	FamRouterReplicaPrompts  = FamilyDef{"llm4vv_router_replica_prompts_total", "counter", "Prompts answered per replica."}
	FamRouterReplicaFailures = FamilyDef{"llm4vv_router_replica_failures_total", "counter", "Failed requests per replica."}
	FamRouterStageSeconds    = FamilyDef{"llm4vv_router_stage_seconds", "summary", "Routing latency quantiles (route = one prompt, route_batch = one shard)."}
)

// Tracing families, exported by both daemon and router when a tracer
// is mounted; labelled with the owning instance (replica= or router=)
// plus stage="<span name>" and trace_id="<hex>".
var (
	FamTraceSlowExemplar = FamilyDef{"llm4vv_trace_slow_exemplar", "gauge", "Slowest recent trace per span name: value is the span duration in seconds, trace_id labels the trace to pull from /debug/traces or the JSONL sink."}
)

// Resilience families, exported by both daemon and router; labelled
// with the owning instance (replica= or router=). The families are
// always present — zero-valued series are emitted when the source is
// absent — so dashboards and alerts can rely on their existence.
var (
	FamResilienceFaults       = FamilyDef{"llm4vv_resilience_faults_injected_total", "counter", "Deterministic chaos faults injected, by injection point (0 unless a -fault schedule is armed)."}
	FamResilienceRetries      = FamilyDef{"llm4vv_resilience_retries_total", "counter", "Remote-client request retries after transient failures (backoff sleeps taken)."}
	FamResilienceBreakerState = FamilyDef{"llm4vv_resilience_breaker_state", "gauge", "Per-target circuit-breaker state: 0 closed, 1 half-open, 2 open."}
)

// Families returns every registered metric family, daemon first, in
// exposition order. New families must be added here as well as
// declared above — the docs-diff test walks this list.
func Families() []FamilyDef {
	return []FamilyDef{
		FamRequests,
		FamBatchRequests,
		FamRejected,
		FamEndpointCalls,
		FamEndpointPrompts,
		FamCoalescedBatches,
		FamStoreHits,
		FamGatherDelay,
		FamInflight,
		FamStageSeconds,
		FamStoreKeys,
		FamStoreSegments,
		FamStoreActiveBytes,
		FamStoreDropped,
		FamRouterAdmitted,
		FamRouterShed,
		FamRouterQuotaRejected,
		FamRouterRequests,
		FamRouterBatchRequests,
		FamRouterRoutedPrompts,
		FamRouterFailovers,
		FamRouterSpills,
		FamRouterInflight,
		FamRouterReplicaHealthy,
		FamRouterReplicaPrompts,
		FamRouterReplicaFailures,
		FamRouterStageSeconds,
		FamTraceSlowExemplar,
		FamResilienceFaults,
		FamResilienceRetries,
		FamResilienceBreakerState,
	}
}

// Emit writes a def's family with the given samples: Counter/Gauge
// semantics for one- or many-series families. Summary defs go through
// EmitSummaries.
func (p *Prom) Emit(d FamilyDef, samples ...Sample) {
	p.Family(d.Name, d.Type, d.Help, samples...)
}

// EmitValue writes a def's family as a single series.
func (p *Prom) EmitValue(d FamilyDef, value float64, labels ...[2]string) {
	p.Emit(d, Sample{Labels: labels, Value: value})
}

// EmitSummaries writes a summary def from Recorder stage snapshots.
func (p *Prom) EmitSummaries(d FamilyDef, stages []StageStats, labels ...[2]string) {
	p.Summaries(d.Name, d.Help, stages, labels...)
}
