package perf

// Prometheus text exposition (format version 0.0.4), written by hand:
// the daemon and router /metrics endpoints export a handful of
// counters, gauges, and latency summaries, which does not justify a
// client-library dependency. Prom builds one scrape body family by
// family — each family emits its # HELP / # TYPE header exactly once,
// label values are escaped per the format, and float rendering uses
// the shortest exact form — so the output parses in any Prometheus
// scraper and in the format checks the fleet tests run against it.

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one time series of a family: a label set and a value.
type Sample struct {
	Labels [][2]string
	Value  float64
}

// Label is a convenience constructor for a Sample label pair.
func Label(name, value string) [2]string { return [2]string{name, value} }

// Prom writes one text-exposition scrape body. Errors are sticky: the
// first write failure is kept and every later call is a no-op, so a
// family-by-family caller checks Err once at the end.
type Prom struct {
	w   io.Writer
	err error
}

// NewProm returns a Prom writing to w.
func NewProm(w io.Writer) *Prom { return &Prom{w: w} }

// Err reports the first write error, if any.
func (p *Prom) Err() error { return p.err }

// Counter writes a single-series counter family.
func (p *Prom) Counter(name, help string, value float64, labels ...[2]string) {
	p.Family(name, "counter", help, Sample{Labels: labels, Value: value})
}

// Gauge writes a single-series gauge family.
func (p *Prom) Gauge(name, help string, value float64, labels ...[2]string) {
	p.Family(name, "gauge", help, Sample{Labels: labels, Value: value})
}

// Family writes one metric family: the HELP/TYPE header followed by
// every sample. A family with no samples writes nothing — a scrape
// never contains headers for series that do not exist.
func (p *Prom) Family(name, typ, help string, samples ...Sample) {
	if len(samples) == 0 {
		return
	}
	p.printf("# HELP %s %s\n", name, escapeHelp(help))
	p.printf("# TYPE %s %s\n", name, typ)
	for _, s := range samples {
		p.printf("%s%s %s\n", name, renderLabels(s.Labels), formatValue(s.Value))
	}
}

// Summaries writes one summary family from Recorder stage snapshots:
// for every stage, the p50 and p99 quantile series plus the _count
// series, each labelled stage="<name>" alongside the shared labels.
// Latencies are exported in seconds, the Prometheus base unit.
func (p *Prom) Summaries(name, help string, stages []StageStats, labels ...[2]string) {
	if len(stages) == 0 {
		return
	}
	p.printf("# HELP %s %s\n", name, escapeHelp(help))
	p.printf("# TYPE %s summary\n", name)
	for _, st := range stages {
		base := append(append([][2]string(nil), labels...), Label("stage", st.Stage))
		p.printf("%s%s %s\n", name,
			renderLabels(append(base, Label("quantile", "0.5"))), formatValue(st.P50.Seconds()))
		p.printf("%s%s %s\n", name,
			renderLabels(append(base, Label("quantile", "0.99"))), formatValue(st.P99.Seconds()))
		p.printf("%s_count%s %d\n", name, renderLabels(base), st.Count)
	}
}

func (p *Prom) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// renderLabels formats a label set as {a="x",b="y"}; empty sets render
// as nothing, matching bare-series syntax.
func renderLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l[0])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l[1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are
// legal there).
func escapeHelp(v string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(v)
}

// formatValue renders a float in the shortest exact form.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
