// Package perf is the measurement substrate shared by the benchmark
// suite and the service tier: a concurrency-safe recorder for
// per-stage latency samples with quantile extraction (behind the
// BenchmarkThroughput* suite, DESIGN.md §10), the field-profiling
// hook behind -cpuprofile/-memprofile, and the hand-rolled Prometheus
// text exposition (Prom, prom.go) that the llm4vvd and llm4vv-router
// /metrics endpoints serve. Every exported metric family is declared
// once in the registry (FamilyDef, Families in families.go) that both
// emission sites draw from — docs/OPERATIONS.md documents exactly
// that list, and a test in this package diffs the two. The package
// deliberately has no dependencies on the pipeline or judge packages
// — they expose plain callback hooks
// (pipeline.Config.StageObserver) and the harness plugs a Recorder
// in, so production runs without an observer pay a single nil check
// per stage.
package perf

import (
	"sort"
	"sync"
	"time"
)

// Recorder collects duration samples per named stage. The zero value
// is not usable; construct with NewRecorder. All methods are safe for
// concurrent use — stage workers observe from many goroutines.
type Recorder struct {
	mu      sync.Mutex
	samples map[string][]time.Duration
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{samples: map[string][]time.Duration{}}
}

// Observe records one duration sample for a stage.
func (r *Recorder) Observe(stage string, d time.Duration) {
	r.mu.Lock()
	r.samples[stage] = append(r.samples[stage], d)
	r.mu.Unlock()
}

// Stages returns the recorded stage names, sorted.
func (r *Recorder) Stages() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.samples))
	for s := range r.samples {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Count reports how many samples a stage holds.
func (r *Recorder) Count(stage string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples[stage])
}

// Quantile returns the q-th quantile (0 <= q <= 1) of a stage's
// samples by the nearest-rank method; 0 when the stage has no samples.
// q outside [0, 1] is clamped.
func (r *Recorder) Quantile(stage string, q float64) time.Duration {
	r.mu.Lock()
	samples := append([]time.Duration(nil), r.samples[stage]...)
	r.mu.Unlock()
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int(q*float64(len(samples)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(samples) {
		rank = len(samples)
	}
	return samples[rank-1]
}

// P50 is Quantile(stage, 0.50).
func (r *Recorder) P50(stage string) time.Duration { return r.Quantile(stage, 0.50) }

// P99 is Quantile(stage, 0.99).
func (r *Recorder) P99(stage string) time.Duration { return r.Quantile(stage, 0.99) }

// StageStats is one stage's aggregate view at Snapshot time: the
// sample count plus the p50/p99 latency quantiles the /metrics
// exposition exports. Count is the monotone series Prometheus derives
// stage rates from.
type StageStats struct {
	Stage string
	Count int
	P50   time.Duration
	P99   time.Duration
}

// Snapshot returns the aggregate stats of every recorded stage, sorted
// by stage name — one consistent cut across all stages, safe against
// concurrent Observe calls. The samples are copied under the lock and
// the quantiles computed outside it, so a scrape never blocks stage
// workers for longer than the copy.
func (r *Recorder) Snapshot() []StageStats {
	r.mu.Lock()
	copies := make(map[string][]time.Duration, len(r.samples))
	for stage, samples := range r.samples {
		copies[stage] = append([]time.Duration(nil), samples...)
	}
	r.mu.Unlock()
	out := make([]StageStats, 0, len(copies))
	for stage, samples := range copies {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		out = append(out, StageStats{
			Stage: stage,
			Count: len(samples),
			P50:   nearestRank(samples, 0.50),
			P99:   nearestRank(samples, 0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// nearestRank is the quantile method of Quantile over an already
// sorted sample slice.
func nearestRank(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// ReportQuantiles emits "<stage>-p50-ns" and "<stage>-p99-ns" metrics
// for every recorded stage through report — shaped for
// testing.B.ReportMetric, so a benchmark publishes per-stage latency
// families for whatever stages its pipeline graph actually ran, with
// no hard-coded stage list to fall out of date when the graph changes.
func (r *Recorder) ReportQuantiles(report func(n float64, unit string)) {
	for _, st := range r.Snapshot() {
		report(float64(st.P50), st.Stage+"-p50-ns")
		report(float64(st.P99), st.Stage+"-p99-ns")
	}
}

// Rate converts an item count and an elapsed duration (testing.B's
// own timer) into an items-per-second metric; 0 for a degenerate
// instant run rather than a division by zero.
func Rate(items int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(items) / elapsed.Seconds()
}
