package perf

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

func TestFamilyRegistrySane(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range Families() {
		if d.Name == "" || d.Help == "" {
			t.Errorf("family %+v: empty name or help", d)
		}
		if !strings.HasPrefix(d.Name, "llm4vv_") {
			t.Errorf("family %q: not in the llm4vv_ namespace", d.Name)
		}
		switch d.Type {
		case "counter", "gauge", "summary":
		default:
			t.Errorf("family %q: unknown type %q", d.Name, d.Type)
		}
		if strings.HasSuffix(d.Name, "_total") && d.Type != "counter" {
			t.Errorf("family %q: _total name with type %q", d.Name, d.Type)
		}
		if seen[d.Name] {
			t.Errorf("family %q registered twice", d.Name)
		}
		seen[d.Name] = true
	}
}

// TestOperationsDocCoversRegistry diffs the metric registry against
// docs/OPERATIONS.md in both directions: every registered family must
// be documented in the runbook, and every llm4vv_* token the runbook
// mentions must exist in the registry — so the docs can neither lag a
// new metric nor advertise a phantom one.
func TestOperationsDocCoversRegistry(t *testing.T) {
	data, err := os.ReadFile("../../docs/OPERATIONS.md")
	if err != nil {
		t.Fatalf("reading runbook: %v", err)
	}
	doc := string(data)

	registered := map[string]FamilyDef{}
	for _, d := range Families() {
		registered[d.Name] = d
	}

	for name := range registered {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("registered family %q is not documented in docs/OPERATIONS.md", name)
		}
	}

	for _, tok := range regexp.MustCompile(`llm4vv_[a-z0-9_]+`).FindAllString(doc, -1) {
		if _, ok := registered[tok]; ok {
			continue
		}
		// Summaries also expose a _count series per family; the docs
		// may reference it.
		if base, found := strings.CutSuffix(tok, "_count"); found {
			if d, ok := registered[base]; ok && d.Type == "summary" {
				continue
			}
		}
		t.Errorf("docs/OPERATIONS.md mentions %q, which is not a registered family", tok)
	}
}
