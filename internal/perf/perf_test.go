package perf

import (
	"os"
	"sync"
	"testing"
	"time"
)

func TestQuantileNearestRank(t *testing.T) {
	r := NewRecorder()
	// 1..100ms, inserted out of order.
	for i := 100; i >= 1; i-- {
		r.Observe("judge", time.Duration(i)*time.Millisecond)
	}
	if got := r.P50("judge"); got != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", got)
	}
	if got := r.P99("judge"); got != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", got)
	}
	if got := r.Quantile("judge", 1); got != 100*time.Millisecond {
		t.Errorf("q1.0 = %v, want 100ms", got)
	}
	if got := r.Quantile("judge", 0); got != 1*time.Millisecond {
		t.Errorf("q0 = %v, want 1ms (nearest rank clamps to the first sample)", got)
	}
	// Out-of-range q is clamped, not a panic.
	if got := r.Quantile("judge", 2); got != 100*time.Millisecond {
		t.Errorf("q2.0 = %v, want clamp to max", got)
	}
	if got := r.Quantile("missing", 0.5); got != 0 {
		t.Errorf("missing stage quantile = %v, want 0", got)
	}
	if got := r.Count("judge"); got != 100 {
		t.Errorf("Count = %d, want 100", got)
	}
}

func TestQuantileSingleSample(t *testing.T) {
	r := NewRecorder()
	r.Observe("exec", 7*time.Millisecond)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := r.Quantile("exec", q); got != 7*time.Millisecond {
			t.Errorf("Quantile(%v) = %v, want 7ms", q, got)
		}
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Observe("compile", time.Millisecond)
				r.Observe("exec", 2*time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Count("compile"); got != 800 {
		t.Errorf("Count(compile) = %d, want 800", got)
	}
	if got := r.Count("exec"); got != 800 {
		t.Errorf("Count(exec) = %d, want 800", got)
	}
	stages := r.Stages()
	if len(stages) != 2 || stages[0] != "compile" || stages[1] != "exec" {
		t.Errorf("Stages = %v, want [compile exec]", stages)
	}
}

func TestRate(t *testing.T) {
	if got := Rate(100, 2*time.Second); got != 50 {
		t.Errorf("Rate = %v, want 50", got)
	}
	if got := Rate(100, 0); got != 0 {
		t.Errorf("Rate with zero elapsed = %v, want 0", got)
	}
}

func TestStartProfilesWritesBoth(t *testing.T) {
	dir := t.TempDir()
	cpu := dir + "/cpu.out"
	mem := dir + "/mem.out"
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Some work for the profiler to see.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartProfilesEmptyPathsNoop(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartProfilesBadPath(t *testing.T) {
	if _, err := StartProfiles(t.TempDir()+"/missing-dir/cpu.out", ""); err == nil {
		t.Fatal("want error for uncreatable cpu profile path")
	}
}

func TestReportQuantilesEmitsPerStageFamilies(t *testing.T) {
	r := NewRecorder()
	r.Observe("compile", 2*time.Millisecond)
	r.Observe("compile", 4*time.Millisecond)
	r.Observe("escalate", 9*time.Millisecond)
	got := map[string]float64{}
	r.ReportQuantiles(func(n float64, unit string) { got[unit] = n })
	// One p50 and one p99 family per recorded stage — whatever the
	// stage names are, with no built-in list.
	want := []string{"compile-p50-ns", "compile-p99-ns", "escalate-p50-ns", "escalate-p99-ns"}
	if len(got) != len(want) {
		t.Fatalf("got %d metrics %v, want %d", len(got), got, len(want))
	}
	for _, unit := range want {
		if _, ok := got[unit]; !ok {
			t.Errorf("missing metric %s", unit)
		}
	}
	if got["compile-p50-ns"] != float64(2*time.Millisecond) {
		t.Errorf("compile-p50-ns = %v, want %v", got["compile-p50-ns"], float64(2*time.Millisecond))
	}
	if got["escalate-p99-ns"] != float64(9*time.Millisecond) {
		t.Errorf("escalate-p99-ns = %v, want %v", got["escalate-p99-ns"], float64(9*time.Millisecond))
	}
}
