package perf

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles arms field profiling for a command: when cpuPath is
// non-empty a CPU profile starts immediately, and when memPath is
// non-empty the returned stop writes a heap profile (after a GC, so
// it shows live memory rather than garbage) there. Either path may be
// empty; stop is always safe to call exactly once. cmd/judgebench and
// cmd/llm4vvd expose these as -cpuprofile/-memprofile so hot paths
// can be profiled in the field against real workloads rather than
// bench fixtures.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("perf: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("perf: cpu profile: %w", err)
		}
		cpuFile = f
	}
	stop = func() error {
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			keep(cpuFile.Close())
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				keep(fmt.Errorf("perf: mem profile: %w", err))
			} else {
				runtime.GC() // heap profile of live objects, not garbage
				keep(pprof.WriteHeapProfile(f))
				keep(f.Close())
			}
		}
		return firstErr
	}
	return stop, nil
}
