package perf

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestSnapshotAggregates(t *testing.T) {
	r := NewRecorder()
	for i := 100; i >= 1; i-- {
		r.Observe("judge", time.Duration(i)*time.Millisecond)
	}
	r.Observe("compile", 3*time.Millisecond)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot returned %d stages, want 2", len(snap))
	}
	if snap[0].Stage != "compile" || snap[1].Stage != "judge" {
		t.Fatalf("stages not sorted: %v, %v", snap[0].Stage, snap[1].Stage)
	}
	j := snap[1]
	if j.Count != 100 || j.P50 != 50*time.Millisecond || j.P99 != 99*time.Millisecond {
		t.Errorf("judge stats = %+v, want count=100 p50=50ms p99=99ms", j)
	}
	c := snap[0]
	if c.Count != 1 || c.P50 != 3*time.Millisecond || c.P99 != 3*time.Millisecond {
		t.Errorf("compile stats = %+v, want count=1 p50=p99=3ms", c)
	}
	if got := NewRecorder().Snapshot(); len(got) != 0 {
		t.Errorf("empty recorder Snapshot = %v, want empty", got)
	}
}

func TestSnapshotConcurrentWithObserve(t *testing.T) {
	r := NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			r.Observe("judge", time.Duration(i))
		}
	}()
	for i := 0; i < 50; i++ {
		for _, s := range r.Snapshot() {
			if s.Count > 0 && s.P99 < s.P50 {
				t.Fatalf("inconsistent snapshot: p99 %v < p50 %v", s.P99, s.P50)
			}
		}
	}
	<-done
}

func TestPromExposition(t *testing.T) {
	var sb strings.Builder
	p := NewProm(&sb)
	p.Counter("llm4vv_requests_total", "Admitted requests.", 42, Label("replica", "127.0.0.1:1"))
	p.Gauge(`llm4vv_healthy`, `Healthy flag with "quotes" and \slash`, 1,
		Label("replica", `a"b\c`+"\n"))
	p.Family("llm4vv_routed_total", "counter", "Per-replica routed prompts.",
		Sample{Labels: [][2]string{Label("replica", "a")}, Value: 1},
		Sample{Labels: [][2]string{Label("replica", "b")}, Value: 2},
	)
	p.Family("llm4vv_empty_total", "counter", "Never emitted.")
	p.Summaries("llm4vv_stage_seconds", "Stage latency.", []StageStats{
		{Stage: "resolve", Count: 7, P50: 1500 * time.Microsecond, P99: 20 * time.Millisecond},
	})
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	checkPromText(t, out)
	for _, want := range []string{
		`llm4vv_requests_total{replica="127.0.0.1:1"} 42`,
		`llm4vv_healthy{replica="a\"b\\c\n"} 1`,
		`llm4vv_routed_total{replica="b"} 2`,
		`llm4vv_stage_seconds{stage="resolve",quantile="0.5"} 0.0015`,
		`llm4vv_stage_seconds{stage="resolve",quantile="0.99"} 0.02`,
		`llm4vv_stage_seconds_count{stage="resolve"} 7`,
		"# TYPE llm4vv_stage_seconds summary",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "llm4vv_empty_total") {
		t.Errorf("sample-less family leaked a header:\n%s", out)
	}
}

// checkPromText is a line-level validity check of a text-exposition
// body: every non-comment line is `name[{labels}] value` with a
// parseable float value, quotes in label blocks balance, and every
// series name was introduced by a preceding # TYPE header. The fleet
// and server /metrics tests share it via exported test hooks.
func checkPromText(t *testing.T, body string) {
	t.Helper()
	typed := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line inside exposition", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE header %q", ln+1, line)
			}
			typed[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		series, value := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("line %d: unparsable value %q: %v", ln+1, value, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated label block in %q", ln+1, series)
			}
			quotes, escaped := 0, false
			for _, c := range series {
				switch {
				case escaped:
					escaped = false
				case c == '\\':
					escaped = true
				case c == '"':
					quotes++
				}
			}
			if quotes%2 != 0 {
				t.Fatalf("line %d: unbalanced quotes in %q", ln+1, series)
			}
			name = series[:i]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(name, "_count"), "_sum")
		if !typed[name] && !typed[family] {
			t.Fatalf("line %d: series %q has no TYPE header", ln+1, name)
		}
	}
}
