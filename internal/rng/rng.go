// Package rng provides the deterministic pseudo-random number generation
// used by every stochastic component of the reproduction: suite
// generation, negative-probing mutation choices, and the simulated
// judge's perception noise.
//
// Two properties matter for the experiments:
//
//   - Determinism: a Source is fully determined by its seed, so every
//     table in EXPERIMENTS.md is reproducible bit-for-bit.
//   - Splittability: Split derives an independent child stream from a
//     label, so per-file randomness does not depend on the order in
//     which files are processed (important for the parallel pipeline,
//     whose workers must produce order-independent results).
//
// The generator is xoshiro256** seeded through SplitMix64, implemented
// locally so the stream is stable across Go releases (math/rand's
// default source changed in the past and math/rand/v2 is not seedable
// per-stream by string labels).
package rng

import "math/bits"

// Source is a deterministic, splittable random number generator.
// It is NOT safe for concurrent use; use Split to give each goroutine
// its own stream.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via SplitMix64, guaranteeing a
// well-mixed internal state even for small seeds.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm, src.s[i] = splitMix64(sm)
	}
	// xoshiro must not be seeded with the all-zero state.
	if src.s == [4]uint64{} {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// splitMix64 advances the SplitMix64 state and returns the next state
// and output value.
func splitMix64(state uint64) (next, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *Source) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17

	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)

	return result
}

// Split derives an independent child stream from a string label. Equal
// (parent seed, label) pairs always produce identical children, and
// distinct labels produce streams that are independent for all
// practical purposes. Split does not advance the parent stream, so the
// set of children is independent of the order they are created in.
func (r *Source) Split(label string) *Source {
	h := uint64(0xcbf29ce484222325) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	// Mix the parent's seed state in without mutating it.
	h ^= r.s[0] + bits.RotateLeft64(r.s[2], 13)
	return New(h)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, bound)
		if lo >= bound || lo >= uint64(-bound)%bound {
			return int(hi)
		}
	}
}

// IntRange returns a uniform int in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Pick returns a uniformly chosen element of choices. It panics if
// choices is empty.
func (r *Source) Pick(choices []string) string {
	return choices[r.Intn(len(choices))]
}

// Shuffle permutes the first n indices uniformly, calling swap as
// sort.Shuffle would (Fisher–Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a uniform random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Sample returns k distinct indices drawn uniformly from [0, n)
// in random order. It panics if k > n or k < 0.
func (r *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample with k out of range")
	}
	return r.Perm(n)[:k]
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, via the polar (Marsaglia) method.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		// s < 1, so ln(s) < 0 and the radicand is positive.
		return u * sqrt(-2*ln(s)/s)
	}
}

// sqrt is a local Newton iteration so the package stays free of even
// math imports; inputs here are always positive and well-conditioned.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 32; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// ln computes the natural logarithm for x > 0 using range reduction to
// [1, 2) and an atanh-series expansion; accuracy is far beyond what the
// noise model needs.
func ln(x float64) float64 {
	if x <= 0 {
		panic("rng: ln of non-positive value")
	}
	// Range-reduce: x = m * 2^k with m in [1, 2).
	k := 0
	for x >= 2 {
		x /= 2
		k++
	}
	for x < 1 {
		x *= 2
		k--
	}
	// ln(m) = 2*atanh((m-1)/(m+1)).
	y := (x - 1) / (x + 1)
	y2 := y * y
	term := y
	sum := 0.0
	for i := 1; i < 40; i += 2 {
		sum += term / float64(i)
		term *= y2
	}
	const ln2 = 0.6931471805599453
	return 2*sum + float64(k)*ln2
}
