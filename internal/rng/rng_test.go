package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: streams diverged: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed produced repetitive stream: %d distinct of 100", len(seen))
	}
}

func TestSplitIsStableAndOrderIndependent(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("file-001")
	c2 := parent.Split("file-002")
	// Recreate in the opposite order: children must be identical.
	parent2 := New(7)
	d2 := parent2.Split("file-002")
	d1 := parent2.Split("file-001")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != d1.Uint64() {
			t.Fatal("Split(file-001) not stable across creation order")
		}
		if c2.Uint64() != d2.Uint64() {
			t.Fatal("Split(file-002) not stable across creation order")
		}
	}
}

func TestSplitDistinctLabelsDiverge(t *testing.T) {
	parent := New(7)
	a := parent.Split("a")
	b := parent.Split("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams for distinct labels overlapped %d/100", same)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split("x")
	_ = a.Split("y")
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := trials / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange(-3,3) = %d", v)
		}
	}
	if got := r.IntRange(4, 4); got != 4 {
		t.Fatalf("IntRange(4,4) = %d, want 4", got)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(6)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(8)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / trials
	if got < 0.28 || got > 0.32 {
		t.Fatalf("Bool(0.3) frequency = %v", got)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw % 64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSample(t *testing.T) {
	r := New(12)
	s := r.Sample(10, 4)
	if len(s) != 4 {
		t.Fatalf("Sample(10,4) returned %d items", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Sample produced invalid/duplicate index %d", v)
		}
		seen[v] = true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3,4) did not panic")
		}
	}()
	r.Sample(3, 4)
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(13)
	data := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
	seen := make([]bool, len(data))
	for _, v := range data {
		if seen[v] {
			t.Fatalf("shuffle duplicated element %d", v)
		}
		seen[v] = true
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(14)
	const trials = 200000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestLocalMathAgainstStdlib(t *testing.T) {
	for _, x := range []float64{0.001, 0.5, 1, 1.5, 2, 10, 12345.678} {
		if got, want := sqrt(x), math.Sqrt(x); math.Abs(got-want) > 1e-9*want+1e-12 {
			t.Errorf("sqrt(%v) = %v, want %v", x, got, want)
		}
		if got, want := ln(x), math.Log(x); math.Abs(got-want) > 1e-9*math.Abs(want)+1e-12 {
			t.Errorf("ln(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestPick(t *testing.T) {
	r := New(15)
	choices := []string{"a", "b", "c"}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		counts[r.Pick(choices)]++
	}
	for _, c := range choices {
		if counts[c] < 800 {
			t.Fatalf("Pick starved choice %q: %d/3000", c, counts[c])
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkSplit(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Split("some-file-label.c")
	}
}
