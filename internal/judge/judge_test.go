package judge

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/spec"
)

// scriptedLLM returns canned responses and records prompts.
type scriptedLLM struct {
	response string
	prompts  []string
}

func (s *scriptedLLM) Complete(prompt string) string {
	s.prompts = append(s.prompts, prompt)
	return s.response
}

const sampleCode = "#pragma acc parallel loop\nfor (int i = 0; i < 4; i++) { }\n"

func TestDirectPromptShape(t *testing.T) {
	j := &Judge{LLM: &scriptedLLM{response: "FINAL JUDGEMENT: correct"}, Style: Direct, Dialect: spec.OpenACC}
	ev, err := j.Evaluate(context.Background(), sampleCode, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := ev.Prompt
	for _, want := range []string{
		"Review the following OpenACC code",
		"Syntax: Ensure all OpenACC directives and pragmas are syntactically correct.",
		"Directive Appropriateness:",
		"Clause Correctness:",
		"Memory Management:",
		"Compliance:",
		"Logic: Verify that the logic of the test",
		`"FINAL JUDGEMENT: correct"`,
		"Here is the code:",
	} {
		if !strings.Contains(p, want) {
			t.Errorf("direct prompt missing %q", want)
		}
	}
	if strings.Contains(p, "Compiler return code") {
		t.Error("direct prompt leaks tool info")
	}
	if !strings.HasSuffix(p, sampleCode) {
		t.Error("code not at end of prompt")
	}
	if ev.Verdict != Valid {
		t.Errorf("verdict = %v", ev.Verdict)
	}
}

func TestAgentDirectPromptShape(t *testing.T) {
	info := &ToolInfo{
		CompileRC:     1,
		CompileStderr: "nvc t.c:3: error: boom",
		Ran:           false,
	}
	j := &Judge{LLM: &scriptedLLM{response: "FINAL JUDGEMENT: invalid"}, Style: AgentDirect, Dialect: spec.OpenACC}
	ev, err := j.Evaluate(context.Background(), sampleCode, info)
	if err != nil {
		t.Fatal(err)
	}
	p := ev.Prompt
	for _, want := range []string{
		"Think step by step.",
		`"FINAL JUDGEMENT: valid"`,
		"Here is some information about the code to help you.",
		"Compiler return code: 1",
		"Compiler STDERR: nvc t.c:3: error: boom",
		"could not be executed because compilation failed",
	} {
		if !strings.Contains(p, want) {
			t.Errorf("agent prompt missing %q", want)
		}
	}
	if ev.Verdict != Invalid {
		t.Errorf("verdict = %v", ev.Verdict)
	}
}

func TestAgentDirectPromptWithRun(t *testing.T) {
	info := &ToolInfo{Ran: true, RunRC: 1, RunStderr: "Segmentation fault", RunStdout: ""}
	j := &Judge{LLM: &scriptedLLM{response: "FINAL JUDGEMENT: invalid"}, Style: AgentDirect, Dialect: spec.OpenMP}
	p := j.BuildPrompt(sampleCode, info)
	for _, want := range []string{
		"When the compiled code is run",
		"Return code: 1",
		"STDERR: Segmentation fault",
	} {
		if !strings.Contains(p, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
}

func TestAgentIndirectPromptShape(t *testing.T) {
	info := &ToolInfo{Ran: true}
	j := &Judge{LLM: &scriptedLLM{response: "FINAL JUDGEMENT: valid"}, Style: AgentIndirect, Dialect: spec.OpenMP}
	p := j.BuildPrompt(sampleCode, info)
	for _, want := range []string{
		"Describe what the below OpenMP program will do when run.",
		"you do not have to compile or run the code yourself",
		"suggest why the below code might have been written this way",
		"valid or invalid compiler test for OpenMP compilers",
		"Here is the code for you to analyze:",
	} {
		if !strings.Contains(p, want) {
			t.Errorf("indirect prompt missing %q", want)
		}
	}
}

func TestParseVerdict(t *testing.T) {
	cases := []struct {
		resp string
		want Verdict
	}{
		{"blah blah FINAL JUDGEMENT: valid", Valid},
		{"blah blah FINAL JUDGEMENT: invalid", Invalid},
		{"FINAL JUDGEMENT: correct\n", Valid},
		{"FINAL JUDGEMENT: incorrect\n", Invalid},
		{"The test is valid.", Unparsable},
		{"", Unparsable},
		{"FINAL JUDGEMENT: maybe", Unparsable},
		// The model may restate the phrase; the LAST occurrence rules.
		{"I could say FINAL JUDGEMENT: valid but on reflection\nFINAL JUDGEMENT: invalid", Invalid},
		// Case of the verdict word is forgiving, phrase is not.
		{"FINAL JUDGEMENT: Valid", Valid},
		{"final judgement: valid", Unparsable},
	}
	for _, c := range cases {
		if got := ParseVerdict(c.resp); got != c.want {
			t.Errorf("ParseVerdict(%q) = %v, want %v", c.resp, got, c.want)
		}
	}
}

func TestVerdictStrings(t *testing.T) {
	if Valid.String() != "valid" || Invalid.String() != "invalid" || Unparsable.String() != "unparsable" {
		t.Fatal("verdict strings wrong")
	}
	if Direct.String() != "direct" || AgentDirect.String() != "agent-direct" || AgentIndirect.String() != "agent-indirect" {
		t.Fatal("style strings wrong")
	}
}

func TestEvaluateCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	llm := &scriptedLLM{response: "FINAL JUDGEMENT: valid"}
	j := &Judge{LLM: llm, Style: Direct, Dialect: spec.OpenACC}
	_, err := j.Evaluate(ctx, sampleCode, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(llm.prompts) != 0 {
		t.Fatal("endpoint called despite cancelled context")
	}
}

// ctxLLM implements ContextLLM and records which path was used.
type ctxLLM struct {
	ctxCalls int
}

func (c *ctxLLM) Complete(string) string { return "FINAL JUDGEMENT: valid" }

func (c *ctxLLM) CompleteContext(ctx context.Context, prompt string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	c.ctxCalls++
	return "FINAL JUDGEMENT: valid", nil
}

func TestEvaluatePrefersContextPath(t *testing.T) {
	llm := &ctxLLM{}
	j := &Judge{LLM: llm, Style: Direct, Dialect: spec.OpenACC}
	ev, err := j.Evaluate(context.Background(), sampleCode, nil)
	if err != nil {
		t.Fatal(err)
	}
	if llm.ctxCalls != 1 {
		t.Fatalf("ctx path used %d times, want 1", llm.ctxCalls)
	}
	if ev.Verdict != Valid {
		t.Fatalf("verdict = %v", ev.Verdict)
	}
}

func TestCachedPreservesContextPath(t *testing.T) {
	inner := &ctxLLM{}
	llm := Cached(inner)
	cl, ok := llm.(ContextLLM)
	if !ok {
		t.Fatal("cached wrapper lost ContextLLM")
	}
	if _, err := cl.CompleteContext(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	if inner.ctxCalls != 1 {
		t.Fatalf("inner ctx path called %d times, want 1", inner.ctxCalls)
	}
	// Second identical prompt is served from the memo.
	if _, err := cl.CompleteContext(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	if inner.ctxCalls != 1 {
		t.Fatalf("cache missed: inner called %d times", inner.ctxCalls)
	}
	// Cancellation still propagates through the wrapper on a miss.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.CompleteContext(ctx, "uncached"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCachedDeduplicatesPrompts(t *testing.T) {
	inner := &scriptedLLM{response: "FINAL JUDGEMENT: valid"}
	llm := Cached(inner)
	for i := 0; i < 5; i++ {
		llm.Complete("same prompt")
	}
	llm.Complete("different prompt")
	if len(inner.prompts) != 2 {
		t.Fatalf("inner endpoint saw %d prompts, want 2", len(inner.prompts))
	}
	if llm.Complete("same prompt") != "FINAL JUDGEMENT: valid" {
		t.Fatal("cached response corrupted")
	}
}

// generatingLLM exercises the author-capability passthrough.
type generatingLLM struct{ scriptedLLM }

func (g *generatingLLM) GenerateTest(prompt string) (string, string) {
	return "int main() { return 0; }", "planted-defect"
}

func TestCachedPreservesAuthorCapability(t *testing.T) {
	llm := Cached(&generatingLLM{scriptedLLM{response: "FINAL JUDGEMENT: valid"}})
	g, ok := llm.(interface {
		GenerateTest(string) (string, string)
	})
	if !ok {
		t.Fatal("cached author lost GenerateTest")
	}
	code, defect := g.GenerateTest("generate something")
	if code == "" || defect != "planted-defect" {
		t.Fatalf("GenerateTest passthrough broken: %q %q", code, defect)
	}
}

func TestOMPPromptsUseOMPWording(t *testing.T) {
	j := &Judge{LLM: &scriptedLLM{response: "FINAL JUDGEMENT: valid"}, Style: Direct, Dialect: spec.OpenMP}
	p := j.BuildPrompt(sampleCode, nil)
	if !strings.Contains(p, "OpenMP directives") {
		t.Error("OMP prompt lacks OpenMP wording")
	}
	if strings.Contains(p, "OpenACC") {
		t.Error("OMP prompt mentions OpenACC")
	}
}
