package judge

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"

	"repro/internal/spec"
)

// referenceToolBlock is the original (pre-pooling) tool-block
// renderer, kept verbatim as the parity oracle.
func referenceToolBlock(d spec.Dialect, info *ToolInfo) string {
	var b strings.Builder
	fmt.Fprintf(&b, "When compiled with a compliant %s compiler, the below code causes the following outputs:\n", d)
	fmt.Fprintf(&b, "Compiler return code: %d\n", info.CompileRC)
	fmt.Fprintf(&b, "Compiler STDERR: %s\n", info.CompileStderr)
	fmt.Fprintf(&b, "Compiler STDOUT: %s\n", info.CompileStdout)
	switch {
	case info.Ran:
		b.WriteString("When the compiled code is run, it gives the following results:\n")
		fmt.Fprintf(&b, "Return code: %d\n", info.RunRC)
		fmt.Fprintf(&b, "STDERR: %s\n", info.RunStderr)
		fmt.Fprintf(&b, "STDOUT: %s\n", info.RunStdout)
	case info.CompileRC != 0:
		b.WriteString("The code could not be executed because compilation failed.\n")
	default:
		b.WriteString("The compiled program was not executed.\n")
	}
	return b.String()
}

// referenceBuildPrompt is the original strings.Builder prompt
// assembly, kept verbatim: the pooled assembler must reproduce its
// output byte for byte for every style, dialect, and tool outcome.
func referenceBuildPrompt(style Style, d spec.Dialect, code string, info *ToolInfo) string {
	var b strings.Builder
	switch style {
	case Direct:
		fmt.Fprintf(&b, "Review the following %s code and evaluate it based on the following criteria:\n\n", d)
		b.WriteString(criteria(d))
		b.WriteString(`Based on these criteria, evaluate the code in a brief summary, then respond with precisely "FINAL JUDGEMENT: correct" (or incorrect).
You MUST include the exact phrase "FINAL JUDGEMENT: correct" in your evaluation if you believe the code is correct. Otherwise, you must include the phrase "FINAL JUDGEMENT: incorrect" in your evaluation.
`)
		b.WriteString("Here is the code:\n")
		b.WriteString(code)
	case AgentDirect:
		b.WriteString(criteria(d))
		b.WriteString(`Based on these criteria, evaluate the code and determine if it is a valid or invalid test. Think step by step.
You MUST include the exact phrase, "FINAL JUDGEMENT: valid" in your response if you deem the test to be valid.
If you deem the test to be invalid, include the exact phrase "FINAL JUDGEMENT: invalid" in your response instead.
Here is some information about the code to help you.
`)
		if info != nil {
			b.WriteString(referenceToolBlock(d, info))
		}
		b.WriteString("Here is the code:\n")
		b.WriteString(code)
	case AgentIndirect:
		fmt.Fprintf(&b, "Describe what the below %s program will do when run. Think step by step.\n", d)
		b.WriteString("Here is some information about the code to help you; you do not have to compile or run the code yourself.\n")
		if info != nil {
			b.WriteString(referenceToolBlock(d, info))
		}
		fmt.Fprintf(&b, `Using this information, describe in full detail how the below code works, what the below code will do when run, and suggest why the below code might have been written this way.
Then, based on that description, determine whether the described program would be a valid or invalid compiler test for %[1]s compilers.
You MUST include the exact phrase "FINAL JUDGEMENT: valid" in your final response if you believe that your description of the below %[1]s code describes a valid compiler test; otherwise, your final response MUST include the exact phrase "FINAL JUDGEMENT: invalid".
`, d)
		b.WriteString("Here is the code for you to analyze:\n")
		b.WriteString(code)
	}
	return b.String()
}

// TestBuildPromptParity: the pooled, precomputed-segment assembler
// reproduces the original template rendering byte-identically across
// every style × dialect × tool-outcome combination (the acceptance
// bar for the zero-allocation rewrite — prompts feed deterministic
// endpoints, so a single changed byte changes verdicts).
func TestBuildPromptParity(t *testing.T) {
	infos := []*ToolInfo{
		nil,
		{},
		{CompileRC: 0, CompileStdout: "built fine", Ran: true, RunRC: 0, RunStdout: "PASS\n"},
		{CompileRC: 2, CompileStderr: "error: bad clause\nnote: see spec", Ran: false},
		{CompileRC: 0, CompileStdout: "warn", Ran: true, RunRC: 139, RunStderr: "segfault"},
		{CompileRC: -1, CompileStderr: strings.Repeat("x", 3000)},
	}
	codes := []string{"", "int main(){}\n", strings.Repeat("#pragma acc parallel\n{}\n", 200)}
	for _, style := range []Style{Direct, AgentDirect, AgentIndirect} {
		for _, d := range []spec.Dialect{spec.OpenACC, spec.OpenMP} {
			j := &Judge{Style: style, Dialect: d}
			for ii, info := range infos {
				for ci, code := range codes {
					got := j.BuildPrompt(code, info)
					want := referenceBuildPrompt(style, d, code, info)
					if got != want {
						t.Fatalf("style=%v dialect=%v info#%d code#%d: prompt diverged\n got: %q\nwant: %q",
							style, d, ii, ci, got, want)
					}
				}
			}
		}
	}
}

// TestBuildPromptReusedBufferIsolation: a returned prompt must not
// alias the pooled buffer — later BuildPrompt calls reusing the
// buffer cannot mutate earlier results.
func TestBuildPromptReusedBufferIsolation(t *testing.T) {
	j := &Judge{Style: Direct, Dialect: spec.OpenACC}
	first := j.BuildPrompt("AAAA", nil)
	snapshot := strings.Clone(first)
	for i := 0; i < 100; i++ {
		j.BuildPrompt(strings.Repeat("B", 64), nil)
	}
	if first != snapshot {
		t.Fatal("pooled buffer reuse mutated a previously returned prompt")
	}
}

// TestPromptKeyHexMatchesStoreHash: PromptKey.Hex must be the hex
// SHA-256 of the prompt — the encoding store.HashSource uses — so the
// daemon's store-dedup records keep their FileHash key format across
// the hash-keyed cache rewrite.
func TestPromptKeyHexMatchesStoreHash(t *testing.T) {
	for _, p := range []string{"", "prompt", strings.Repeat("long prompt ", 1000)} {
		sum := sha256.Sum256([]byte(p))
		want := hex.EncodeToString(sum[:])
		if got := KeyOf(p).Hex(); got != want {
			t.Fatalf("KeyOf(%.20q).Hex() = %s, want %s", p, got, want)
		}
	}
	if KeyOf("a") == KeyOf("b") {
		t.Fatal("distinct prompts produced the same key")
	}
}
