package judge

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// gatedLLM blocks every completion until released, counting calls —
// slow enough that concurrent misses on one prompt genuinely overlap.
type gatedLLM struct {
	gate  chan struct{}
	calls atomic.Int64
}

func (g *gatedLLM) Complete(prompt string) string {
	g.calls.Add(1)
	<-g.gate
	return "resp:" + prompt
}

// TestCachedSingleflight is the regression test for duplicate
// concurrent misses: N goroutines asking for the same prompt while it
// is in flight must produce exactly one endpoint call.
func TestCachedSingleflight(t *testing.T) {
	inner := &gatedLLM{gate: make(chan struct{})}
	llm := Cached(inner)

	const waiters = 16
	var wg sync.WaitGroup
	results := make([]string, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = llm.Complete("shared prompt")
		}(i)
	}
	// Let every goroutine reach the cache before releasing the single
	// endpoint call. The non-leaders are parked on the flight's done
	// channel; none of them may have touched the endpoint.
	close(inner.gate)
	wg.Wait()

	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("endpoint called %d times for one prompt, want 1 (singleflight)", got)
	}
	for i, r := range results {
		if r != "resp:shared prompt" {
			t.Fatalf("waiter %d got %q", i, r)
		}
	}
	// And distinct prompts still do not serialise behind each other.
	if r := llm.Complete("another prompt"); r != "resp:another prompt" {
		t.Fatalf("got %q", r)
	}
	if got := inner.calls.Load(); got != 2 {
		t.Fatalf("endpoint calls = %d, want 2", got)
	}
}

// TestCachedSingleflightConcurrentBatch: CompleteBatch through the
// cache dedupes against in-flight single completions and within the
// shard itself.
func TestCachedSingleflightConcurrentBatch(t *testing.T) {
	inner := &gatedLLM{gate: make(chan struct{})}
	c := Cached(inner).(interface {
		LLM
		BatchLLM
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Complete("p1") // leads p1
	}()
	wg.Add(1)
	var batch []string
	var batchErr error
	go func() {
		defer wg.Done()
		// p1 may be led by the goroutine above or by this batch —
		// either way it must not be completed twice; p2 appears twice
		// in the shard and must be completed once.
		batch, batchErr = c.CompleteBatch(context.Background(), []string{"p1", "p2", "p2"})
	}()
	close(inner.gate)
	wg.Wait()

	if batchErr != nil {
		t.Fatal(batchErr)
	}
	want := []string{"resp:p1", "resp:p2", "resp:p2"}
	for i := range want {
		if batch[i] != want[i] {
			t.Fatalf("batch[%d] = %q, want %q", i, batch[i], want[i])
		}
	}
	if got := inner.calls.Load(); got != 2 {
		t.Fatalf("endpoint calls = %d, want 2 (p1 once, p2 once)", got)
	}
}

// TestCachedFailedLeaderRetries: a leader failing with its context's
// error must not poison waiters — the next caller retries and
// succeeds, and failures are never memoised.
func TestCachedFailedLeaderRetries(t *testing.T) {
	inner := &flakyCtxLLM{failures: 1}
	llm := Cached(inner)
	cl := llm.(ContextLLM)
	if _, err := cl.CompleteContext(context.Background(), "p"); err == nil {
		t.Fatal("first call should fail")
	}
	resp, err := cl.CompleteContext(context.Background(), "p")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "ok:p" {
		t.Fatalf("retry got %q", resp)
	}
	if inner.calls != 2 {
		t.Fatalf("inner called %d times, want 2 (failure not cached)", inner.calls)
	}
}

type flakyCtxLLM struct {
	calls    int
	failures int
}

func (f *flakyCtxLLM) Complete(prompt string) string { return "ok:" + prompt }

func (f *flakyCtxLLM) CompleteContext(ctx context.Context, prompt string) (string, error) {
	f.calls++
	if f.calls <= f.failures {
		return "", fmt.Errorf("transient endpoint failure %d", f.calls)
	}
	return "ok:" + prompt, nil
}

// TestCachedPreservesBatchCapability: wrapping a batch-capable
// endpoint keeps BatchLLM, and cached shards only submit true misses.
func TestCachedPreservesBatchCapability(t *testing.T) {
	inner := &batchCountLLM{}
	llm := Cached(inner)
	bl, ok := llm.(BatchLLM)
	if !ok {
		t.Fatal("cached wrapper lost BatchLLM")
	}
	if _, err := bl.CompleteBatch(context.Background(), []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if inner.batched != 2 {
		t.Fatalf("inner batch saw %d prompts, want 2", inner.batched)
	}
	// a and b are memoised; only c reaches the endpoint.
	out, err := bl.CompleteBatch(context.Background(), []string{"a", "c", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if inner.batched != 3 {
		t.Fatalf("inner batch saw %d prompts total, want 3 (hits resubmitted)", inner.batched)
	}
	for i, want := range []string{"batch:a", "batch:c", "batch:b"} {
		if out[i] != want {
			t.Fatalf("out[%d] = %q, want %q", i, out[i], want)
		}
	}
}

type batchCountLLM struct {
	batched int
}

func (b *batchCountLLM) Complete(prompt string) string { return "batch:" + prompt }

func (b *batchCountLLM) CompleteBatch(ctx context.Context, prompts []string) ([]string, error) {
	b.batched += len(prompts)
	out := make([]string, len(prompts))
	for i, p := range prompts {
		out[i] = "batch:" + p
	}
	return out, nil
}

// deterministicBatchLLM answers f(prompt) on both the single and the
// batch path, counting prompts that reach the endpoint.
type deterministicBatchLLM struct {
	sent atomic.Int64
}

func (d *deterministicBatchLLM) respond(p string) string {
	return "det:" + p + ":FINAL JUDGEMENT: valid"
}

func (d *deterministicBatchLLM) Complete(prompt string) string {
	d.sent.Add(1)
	return d.respond(prompt)
}

func (d *deterministicBatchLLM) CompleteBatch(ctx context.Context, prompts []string) ([]string, error) {
	d.sent.Add(int64(len(prompts)))
	out := make([]string, len(prompts))
	for i, p := range prompts {
		out[i] = d.respond(p)
	}
	return out, nil
}

// TestCachedHashKeyStress drives the hash-keyed cache with mixed
// concurrent single and batch callers over an overlapping prompt set
// — the singleflight + shard-dedup machinery under contention (run
// in CI with -race). Every caller must see the serial answer, and
// the endpoint must see each distinct prompt exactly once.
func TestCachedHashKeyStress(t *testing.T) {
	inner := &deterministicBatchLLM{}
	llm := Cached(inner)
	cl := llm.(ContextLLM)
	bl := llm.(BatchLLM)

	const distinct = 24
	prompt := func(i int) string { return fmt.Sprintf("stress-prompt-%02d", i%distinct) }
	want := func(i int) string { return inner.respond(prompt(i)) }

	const workers = 12
	const perWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				switch (w + i) % 3 {
				case 0: // single blocking caller
					if got := llm.Complete(prompt(w + i)); got != want(w+i) {
						errs <- fmt.Errorf("Complete(%d) = %q, want %q", w+i, got, want(w+i))
						return
					}
				case 1: // single context caller
					got, err := cl.CompleteContext(context.Background(), prompt(w+i))
					if err != nil {
						errs <- err
						return
					}
					if got != want(w+i) {
						errs <- fmt.Errorf("CompleteContext(%d) = %q", w+i, got)
						return
					}
				case 2: // batch caller with intra-shard duplicates
					shard := []string{prompt(w + i), prompt(w + i + 7), prompt(w + i)}
					got, err := bl.CompleteBatch(context.Background(), shard)
					if err != nil {
						errs <- err
						return
					}
					for k, p := range shard {
						if got[k] != inner.respond(p) {
							errs <- fmt.Errorf("batch slot %d = %q, want %q", k, got[k], inner.respond(p))
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if sent := inner.sent.Load(); sent != distinct {
		t.Errorf("endpoint saw %d prompts, want %d (each distinct prompt exactly once)", sent, distinct)
	}

	// Verdicts parsed through the cache equal a serial, uncached run.
	j := &Judge{LLM: llm, Style: Direct}
	evs, err := j.EvaluateBatch(context.Background(), []string{"code-a", "code-b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	serial := &Judge{LLM: &deterministicBatchLLM{}, Style: Direct}
	for i, code := range []string{"code-a", "code-b"} {
		ref, err := serial.Evaluate(context.Background(), code, nil)
		if err != nil {
			t.Fatal(err)
		}
		if evs[i].Verdict != ref.Verdict || evs[i].Response != ref.Response {
			t.Errorf("cached batch verdict %d diverged from serial: %v vs %v", i, evs[i].Verdict, ref.Verdict)
		}
	}
}
