// Package judge implements the LLM-as-a-judge harness: the three
// prompt templates of the paper (Listings 1-4), submission of prompts
// to an LLM endpoint, and extraction of the mandated
// "FINAL JUDGEMENT: ..." phrase from free-text responses.
package judge

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/spec"
)

// LLM is the endpoint contract: prompt text in, response text out.
// internal/model provides the simulated deepseek-coder endpoint; a
// real model client would satisfy the same interface.
type LLM interface {
	Complete(prompt string) string
}

// ContextLLM is the optional cancellation-aware endpoint contract.
// Endpoints with real latency (HTTP clients, remote inference servers)
// should implement it so an in-flight completion can be abandoned when
// the caller's context ends; Evaluate uses it when available and falls
// back to Complete otherwise.
type ContextLLM interface {
	CompleteContext(ctx context.Context, prompt string) (string, error)
}

// BatchLLM is the optional batched endpoint contract: a whole shard of
// prompts submitted in one call. Endpoints with a server-side batch
// API (or ones that amortise per-request overhead, like the simulated
// model amortising its n-gram tables) implement it; EvaluateBatch uses
// it when available and falls back to per-prompt completion otherwise.
// Implementations must return exactly one response per prompt, in
// prompt order.
type BatchLLM interface {
	CompleteBatch(ctx context.Context, prompts []string) ([]string, error)
}

// CompleteAll submits a set of prompts through the richest contract
// an endpoint offers: one CompleteBatch call when it implements
// BatchLLM (validating one response per prompt), otherwise per-prompt
// completion — cancellable via ContextLLM when available, with the
// context checked between prompts either way. Responses come back in
// prompt order, identical to asking each prompt alone. The Cached
// wrapper's miss path and the judging daemon's dispatch both resolve
// shards through this helper.
func CompleteAll(ctx context.Context, llm LLM, prompts []string) ([]string, error) {
	if bl, ok := llm.(BatchLLM); ok {
		resps, err := bl.CompleteBatch(ctx, prompts)
		if err == nil && len(resps) != len(prompts) {
			return nil, fmt.Errorf("judge: batch endpoint returned %d responses for %d prompts", len(resps), len(prompts))
		}
		return resps, err
	}
	resps := make([]string, len(prompts))
	cl, hasCtx := llm.(ContextLLM)
	for i, p := range prompts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if hasCtx {
			resp, err := cl.CompleteContext(ctx, p)
			if err != nil {
				return nil, err
			}
			resps[i] = resp
			continue
		}
		resps[i] = llm.Complete(p)
	}
	return resps, nil
}

// Style selects the prompt template.
type Style int

const (
	// Direct is the Part-One prompt (Listing 3): judge the code as
	// presented, answer correct/incorrect.
	Direct Style = iota
	// AgentDirect is the agent-based direct prompt (Listing 2): the
	// criteria plus toolchain outputs, answer valid/invalid. LLMJ 1.
	AgentDirect
	// AgentIndirect is the describe-then-judge prompt (Listing 4).
	// LLMJ 2.
	AgentIndirect
)

func (s Style) String() string {
	switch s {
	case Direct:
		return "direct"
	case AgentDirect:
		return "agent-direct"
	case AgentIndirect:
		return "agent-indirect"
	default:
		return "?"
	}
}

// Verdict is the parsed judgement.
type Verdict int

const (
	// Unparsable: the response did not contain the mandated phrase.
	Unparsable Verdict = iota
	// Valid / Invalid mirror the judgement phrases.
	Valid
	Invalid
)

func (v Verdict) String() string {
	switch v {
	case Valid:
		return "valid"
	case Invalid:
		return "invalid"
	default:
		return "unparsable"
	}
}

// ToolInfo carries the toolchain outputs injected into agent prompts.
type ToolInfo struct {
	CompileRC     int
	CompileStderr string
	CompileStdout string
	// Ran reports whether the execution stage happened (compilation
	// succeeded).
	Ran       bool
	RunRC     int
	RunStderr string
	RunStdout string
}

// Judge binds an LLM endpoint to a prompt style and dialect.
type Judge struct {
	LLM     LLM
	Style   Style
	Dialect spec.Dialect
}

// Evaluation is the record of judging one file.
type Evaluation struct {
	Prompt   string
	Response string
	Verdict  Verdict
}

// Evaluate builds the prompt for code (with tool info for agent
// styles), queries the LLM, and parses the verdict. The context is
// checked before the endpoint call and passed through to endpoints
// implementing ContextLLM; on cancellation the zero Evaluation and the
// context's error are returned.
func (j *Judge) Evaluate(ctx context.Context, code string, info *ToolInfo) (Evaluation, error) {
	prompt := j.BuildPrompt(code, info)
	if err := ctx.Err(); err != nil {
		return Evaluation{}, err
	}
	var resp string
	if cl, ok := j.LLM.(ContextLLM); ok {
		r, err := cl.CompleteContext(ctx, prompt)
		if err != nil {
			return Evaluation{}, err
		}
		resp = r
	} else {
		resp = j.LLM.Complete(prompt)
	}
	return Evaluation{
		Prompt:   prompt,
		Response: resp,
		Verdict:  ParseVerdict(resp),
	}, nil
}

// EvaluateBatch judges a whole shard of files in one pass. infos
// supplies the per-file tool information for agent styles; nil means
// no tool information for any file. When the endpoint implements
// BatchLLM every prompt of the shard is submitted in a single
// CompleteBatch call; otherwise the shard falls back to per-prompt
// Evaluate. Either way the returned evaluations are in input order and
// identical to judging each file alone — batching changes scheduling,
// never verdicts.
func (j *Judge) EvaluateBatch(ctx context.Context, codes []string, infos []*ToolInfo) ([]Evaluation, error) {
	info := func(i int) *ToolInfo {
		if infos == nil {
			return nil
		}
		return infos[i]
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bl, ok := j.LLM.(BatchLLM)
	if !ok {
		evs := make([]Evaluation, len(codes))
		for i, code := range codes {
			ev, err := j.Evaluate(ctx, code, info(i))
			if err != nil {
				return nil, err
			}
			evs[i] = ev
		}
		return evs, nil
	}
	prompts := make([]string, len(codes))
	for i, code := range codes {
		prompts[i] = j.BuildPrompt(code, info(i))
	}
	resps, err := bl.CompleteBatch(ctx, prompts)
	if err != nil {
		return nil, err
	}
	if len(resps) != len(prompts) {
		return nil, fmt.Errorf("judge: batch endpoint returned %d responses for %d prompts", len(resps), len(prompts))
	}
	evs := make([]Evaluation, len(codes))
	for i, resp := range resps {
		evs[i] = Evaluation{Prompt: prompts[i], Response: resp, Verdict: ParseVerdict(resp)}
	}
	return evs, nil
}

// criteria renders the Listing-1 evaluation criteria for a dialect.
func criteria(d spec.Dialect) string {
	name := d.String()
	return fmt.Sprintf(`Syntax: Ensure all %[1]s directives and pragmas are syntactically correct.
Directive Appropriateness: Check if the right directives are used for the intended parallel computations.
Clause Correctness: Verify that all clauses within the directives are correctly used according to %[1]s specifications.
Memory Management: Assess the accuracy of data movement between CPU and GPU.
Compliance: Ensure the code adheres to the latest %[1]s specifications and best practices.
Logic: Verify that the logic of the test (e.g. performing the same computation in serial and parallel and comparing) is correct.
`, name)
}

// promptParts holds the static segments of every prompt template for
// one dialect, rendered once. Prompt text only varies with the dialect
// name, the tool outcomes, and the code under judgement; everything
// else — the criteria, the judgement-phrase instructions, the section
// framing — is computed here exactly as the templates spell it and
// reused byte-for-byte by every BuildPrompt call
// (TestBuildPromptParity pins the equivalence).
type promptParts struct {
	directHead   string // Direct: everything before the code
	agentHead    string // AgentDirect: everything before the tool block
	indirectHead string // AgentIndirect: everything before the tool block
	indirectMid  string // AgentIndirect: between the tool block and the code
	toolHead     string // tool block: the compiler-outputs framing line
}

// Static (dialect-independent) prompt fragments.
const (
	directInstr = `Based on these criteria, evaluate the code in a brief summary, then respond with precisely "FINAL JUDGEMENT: correct" (or incorrect).
You MUST include the exact phrase "FINAL JUDGEMENT: correct" in your evaluation if you believe the code is correct. Otherwise, you must include the phrase "FINAL JUDGEMENT: incorrect" in your evaluation.
`
	agentInstr = `Based on these criteria, evaluate the code and determine if it is a valid or invalid test. Think step by step.
You MUST include the exact phrase, "FINAL JUDGEMENT: valid" in your response if you deem the test to be valid.
If you deem the test to be invalid, include the exact phrase "FINAL JUDGEMENT: invalid" in your response instead.
Here is some information about the code to help you.
`
	indirectNoToolchain = "Here is some information about the code to help you; you do not have to compile or run the code yourself.\n"
	hereIsTheCode       = "Here is the code:\n"
	hereIsTheCodeIndir  = "Here is the code for you to analyze:\n"
)

var partsCache sync.Map // spec.Dialect -> *promptParts

// partsFor renders (once per dialect, then cached) the static prompt
// segments.
func partsFor(d spec.Dialect) *promptParts {
	if p, ok := partsCache.Load(d); ok {
		return p.(*promptParts)
	}
	crit := criteria(d)
	p := &promptParts{
		directHead: fmt.Sprintf("Review the following %s code and evaluate it based on the following criteria:\n\n", d) +
			crit + directInstr + hereIsTheCode,
		agentHead: crit + agentInstr,
		indirectHead: fmt.Sprintf("Describe what the below %s program will do when run. Think step by step.\n", d) +
			indirectNoToolchain,
		indirectMid: fmt.Sprintf(`Using this information, describe in full detail how the below code works, what the below code will do when run, and suggest why the below code might have been written this way.
Then, based on that description, determine whether the described program would be a valid or invalid compiler test for %[1]s compilers.
You MUST include the exact phrase "FINAL JUDGEMENT: valid" in your final response if you believe that your description of the below %[1]s code describes a valid compiler test; otherwise, your final response MUST include the exact phrase "FINAL JUDGEMENT: invalid".
`, d),
		toolHead: fmt.Sprintf("When compiled with a compliant %s compiler, the below code causes the following outputs:\n", d),
	}
	actual, _ := partsCache.LoadOrStore(d, p)
	return actual.(*promptParts)
}

// promptBufPool recycles assembly buffers between BuildPrompt calls;
// promptSizeHint remembers the largest prompt assembled so far (capped
// at maxPooledPromptBuf), so a pooled buffer is pre-grown to the
// suite's working size and a steady-state BuildPrompt performs exactly
// one allocation — the returned string. The cap bounds retention: one
// pathological multi-megabyte prompt must not permanently inflate
// every worker's pooled buffer, so outlier-sized buffers are dropped
// instead of pooled and the hint never exceeds the cap.
const maxPooledPromptBuf = 256 * 1024

var (
	promptBufPool  = sync.Pool{New: func() any { return new([]byte) }}
	promptSizeHint atomic.Int64
)

func getPromptBuf() *[]byte {
	buf := promptBufPool.Get().(*[]byte)
	if hint := int(promptSizeHint.Load()); cap(*buf) < hint {
		*buf = make([]byte, 0, hint)
	}
	return buf
}

func putPromptBuf(buf *[]byte, b []byte) {
	if cap(b) > maxPooledPromptBuf {
		return // outlier: let it be collected rather than retained
	}
	for {
		old := promptSizeHint.Load()
		if int64(len(b)) <= old || promptSizeHint.CompareAndSwap(old, int64(len(b))) {
			break
		}
	}
	*buf = b[:0]
	promptBufPool.Put(buf)
}

// appendToolBlock appends the toolchain-information section of agent
// prompts.
func appendToolBlock(b []byte, p *promptParts, info *ToolInfo) []byte {
	b = append(b, p.toolHead...)
	b = append(b, "Compiler return code: "...)
	b = strconv.AppendInt(b, int64(info.CompileRC), 10)
	b = append(b, "\nCompiler STDERR: "...)
	b = append(b, info.CompileStderr...)
	b = append(b, "\nCompiler STDOUT: "...)
	b = append(b, info.CompileStdout...)
	b = append(b, '\n')
	switch {
	case info.Ran:
		b = append(b, "When the compiled code is run, it gives the following results:\nReturn code: "...)
		b = strconv.AppendInt(b, int64(info.RunRC), 10)
		b = append(b, "\nSTDERR: "...)
		b = append(b, info.RunStderr...)
		b = append(b, "\nSTDOUT: "...)
		b = append(b, info.RunStdout...)
		b = append(b, '\n')
	case info.CompileRC != 0:
		b = append(b, "The code could not be executed because compilation failed.\n"...)
	default:
		b = append(b, "The compiled program was not executed.\n"...)
	}
	return b
}

// BuildPrompt renders the full prompt for a file. Assembly is
// allocation-free apart from the returned string: the static template
// segments are precomputed per dialect and the working buffer is
// pooled, pre-sized to the largest prompt seen.
func (j *Judge) BuildPrompt(code string, info *ToolInfo) string {
	p := partsFor(j.Dialect)
	buf := getPromptBuf()
	b := *buf
	switch j.Style {
	case Direct:
		b = append(b, p.directHead...)
		b = append(b, code...)
	case AgentDirect:
		b = append(b, p.agentHead...)
		if info != nil {
			b = appendToolBlock(b, p, info)
		}
		b = append(b, hereIsTheCode...)
		b = append(b, code...)
	case AgentIndirect:
		b = append(b, p.indirectHead...)
		if info != nil {
			b = appendToolBlock(b, p, info)
		}
		b = append(b, p.indirectMid...)
		b = append(b, hereIsTheCodeIndir...)
		b = append(b, code...)
	}
	s := string(b)
	putPromptBuf(buf, b)
	return s
}

// PromptKey is the 32-byte content hash judging caches key by: the
// SHA-256 of the full prompt text. Keying the memo, the singleflight
// table, and the service dedup maps by PromptKey instead of the prompt
// string keeps map keys at a fixed 32 bytes — the multi-kilobyte
// prompt text is not retained per entry — while remaining
// collision-free for any realistic workload.
type PromptKey [sha256.Size]byte

// KeyOf hashes a prompt to its cache key.
func KeyOf(prompt string) PromptKey {
	return sha256.Sum256([]byte(prompt))
}

// Hex returns the key in lowercase hex — byte-identical to
// store.HashSource of the same prompt, which is what lets the judging
// daemon's store-mounted dedup records keep their pre-hash-key
// FileHash encoding.
func (k PromptKey) Hex() string {
	return hex.EncodeToString(k[:])
}

// ParseVerdict extracts the FINAL JUDGEMENT phrase from a response.
// Both wording schemes (valid/invalid, correct/incorrect) are
// accepted; "invalid" and "incorrect" are checked first because
// "valid" is a substring of "invalid".
func ParseVerdict(resp string) Verdict {
	idx := strings.LastIndex(resp, "FINAL JUDGEMENT:")
	if idx < 0 {
		return Unparsable
	}
	tail := resp[idx+len("FINAL JUDGEMENT:"):]
	// Only look at the text right after the phrase.
	if len(tail) > 40 {
		tail = tail[:40]
	}
	tail = strings.ToLower(tail)
	switch {
	case strings.Contains(tail, "invalid") || strings.Contains(tail, "incorrect"):
		return Invalid
	case strings.Contains(tail, "valid") || strings.Contains(tail, "correct"):
		return Valid
	default:
		return Unparsable
	}
}
