package judge

import (
	"context"
	"strconv"
	"sync"

	"repro/internal/trace"
)

// Cached wraps an LLM with a concurrency-safe memoisation layer keyed
// on the prompt's content hash (PromptKey — 32 bytes per entry instead
// of retaining every prompt string). It is sound for deterministic endpoints
// (the simulated model's response is a pure function of seed and
// prompt) and saves the repeated completions a record-all experiment
// issues when several configurations judge the same file.
//
// Concurrent misses on the same prompt are deduplicated
// singleflight-style: one caller leads the endpoint call, the others
// wait for its result, so an expensive endpoint is never asked the
// same question twice at once. A waiter whose own context ends stops
// waiting with that context's error; if the leader fails, a waiter
// retries as its own leader.
//
// The wrapper preserves the inner endpoint's optional capabilities: it
// always implements ContextLLM (delegating to the inner context path
// when available, so cancellation and endpoint errors still propagate)
// and BatchLLM (submitting only the shard's uncached, unled prompts to
// the inner batch path when the endpoint has one), and when the
// endpoint can also author tests (it has a GenerateTest method, like
// internal/model) the returned value keeps that too. Generation calls
// are never cached because the generation loop relies on per-nonce
// prompts already being unique; failed completions are never cached
// either.
func Cached(llm LLM) LLM {
	c := &cachedLLM{inner: llm, memo: map[PromptKey]string{}, inflight: map[PromptKey]*flight{}}
	if g, ok := llm.(generator); ok {
		return &cachedAuthor{cachedLLM: c, gen: g}
	}
	return c
}

// generator mirrors the authoring side of internal/model without
// importing it (judge must stay model-agnostic).
type generator interface {
	GenerateTest(prompt string) (code, defect string)
}

// flight is one in-progress endpoint call other callers can wait on.
// resp and err are written exactly once, before done is closed.
type flight struct {
	done chan struct{}
	resp string
	err  error
}

type cachedLLM struct {
	inner    LLM
	mu       sync.Mutex
	memo     map[PromptKey]string
	inflight map[PromptKey]*flight
}

// lead resolves a prompt key through the memo and the in-flight
// table: either the memoised response (resp, true, nil), an existing
// flight to wait on (_, false, flight), or leadership of a new flight
// the caller must complete via land (_, false, nil → the registered
// flight is returned as leader).
func (c *cachedLLM) lead(key PromptKey) (resp string, hit bool, waitOn, leader *flight) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if resp, ok := c.memo[key]; ok {
		return resp, true, nil, nil
	}
	if f, ok := c.inflight[key]; ok {
		return "", false, f, nil
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	return "", false, nil, f
}

// land publishes a leader's outcome: the flight leaves the in-flight
// table, successful responses are memoised, and waiters are released.
func (c *cachedLLM) land(key PromptKey, f *flight, resp string, err error) {
	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.memo[key] = resp
	}
	c.mu.Unlock()
	f.resp, f.err = resp, err
	close(f.done)
}

// complete is the single-prompt singleflight path. call performs the
// actual endpoint request when this caller wins leadership.
func (c *cachedLLM) complete(ctx context.Context, prompt string, call func() (string, error)) (string, error) {
	key := KeyOf(prompt)
	for {
		resp, hit, waitOn, leader := c.lead(key)
		if hit {
			// A memo hit is worth a (zero-duration) span: it explains a
			// file whose judge stage cost nothing.
			_, s := trace.Start(ctx, "cache.hit")
			s.End()
			return resp, nil
		}
		if leader != nil {
			resp, err := call()
			c.land(key, leader, resp, err)
			return resp, err
		}
		_, waitSpan := trace.Start(ctx, "cache.wait")
		select {
		case <-waitOn.done:
			waitSpan.End()
			if waitOn.err == nil {
				return waitOn.resp, nil
			}
			// The leader failed (typically its context ended). Its
			// flight is out of the table, so loop and retry as our own
			// leader rather than inheriting an error this caller's
			// live context did not cause.
			if err := ctx.Err(); err != nil {
				return "", err
			}
		case <-ctx.Done():
			waitSpan.End()
			return "", ctx.Err()
		}
	}
}

func (c *cachedLLM) Complete(prompt string) string {
	resp, _ := c.complete(context.Background(), prompt, func() (string, error) {
		return c.inner.Complete(prompt), nil
	})
	return resp
}

// CompleteContext keeps the wrapped endpoint's cancellation and error
// propagation usable through the cache: Evaluate type-asserts
// ContextLLM and would otherwise fall back to the blocking, no-error
// Complete path whenever the cache is on.
func (c *cachedLLM) CompleteContext(ctx context.Context, prompt string) (string, error) {
	return c.complete(ctx, prompt, func() (string, error) {
		if cl, ok := c.inner.(ContextLLM); ok {
			return cl.CompleteContext(ctx, prompt)
		}
		if err := ctx.Err(); err != nil {
			return "", err
		}
		return c.inner.Complete(prompt), nil
	})
}

// CompleteBatch resolves a shard through the cache, submitting only
// the prompts this caller leads — deduplicated within the shard — to
// the inner endpoint in one batch call when it implements BatchLLM.
// Prompts already memoised cost nothing; prompts led by a concurrent
// caller are waited on rather than re-asked.
func (c *cachedLLM) CompleteBatch(ctx context.Context, prompts []string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]string, len(prompts))
	keys := make([]PromptKey, len(prompts))
	for i, p := range prompts {
		keys[i] = KeyOf(p)
	}
	var leadPrompts []string
	var leadKeys []PromptKey
	leadFlights := map[PromptKey]*flight{}
	type waiter struct {
		idx int
		f   *flight
	}
	var waiters []waiter
	c.mu.Lock()
	for i, p := range prompts {
		if resp, ok := c.memo[keys[i]]; ok {
			out[i] = resp
			continue
		}
		if f, ok := c.inflight[keys[i]]; ok {
			waiters = append(waiters, waiter{i, f})
			continue
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[keys[i]] = f
		leadFlights[keys[i]] = f
		leadPrompts = append(leadPrompts, p)
		leadKeys = append(leadKeys, keys[i])
		waiters = append(waiters, waiter{i, f})
	}
	c.mu.Unlock()

	// One span summarises how the shard resolved: memoised, led to the
	// endpoint, or waited out behind concurrent leaders. Guarded so a
	// traceless context costs nothing.
	if _, s := trace.Start(ctx, "cache.batch"); s != nil {
		s.SetAttr("prompts", strconv.Itoa(len(prompts)))
		s.SetAttr("led", strconv.Itoa(len(leadPrompts)))
		s.SetAttr("waited", strconv.Itoa(len(waiters)-len(leadPrompts)))
		defer s.End()
	}

	if len(leadPrompts) > 0 {
		resps, err := c.innerBatch(ctx, leadPrompts)
		for k, key := range leadKeys {
			if err != nil {
				c.land(key, leadFlights[key], "", err)
			} else {
				c.land(key, leadFlights[key], resps[k], nil)
			}
		}
		if err != nil {
			return nil, err
		}
	}
	for _, w := range waiters {
		select {
		case <-w.f.done:
			if w.f.err != nil {
				// A concurrent leader failed; fall back to the
				// single-prompt path, which retries under this
				// caller's context.
				resp, err := c.CompleteContext(ctx, prompts[w.idx])
				if err != nil {
					return nil, err
				}
				out[w.idx] = resp
				continue
			}
			out[w.idx] = w.f.resp
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// innerBatch submits the led prompts through the richest path the
// inner endpoint offers.
func (c *cachedLLM) innerBatch(ctx context.Context, prompts []string) ([]string, error) {
	return CompleteAll(ctx, c.inner, prompts)
}

type cachedAuthor struct {
	*cachedLLM
	gen generator
}

func (c *cachedAuthor) GenerateTest(prompt string) (code, defect string) {
	return c.gen.GenerateTest(prompt)
}
