package judge

import (
	"context"
	"sync"
)

// Cached wraps an LLM with a concurrency-safe memoisation layer keyed
// on the full prompt text. It is sound for deterministic endpoints
// (the simulated model's response is a pure function of seed and
// prompt) and saves the repeated completions a record-all experiment
// issues when several configurations judge the same file.
//
// The wrapper preserves the inner endpoint's optional capabilities:
// it always implements ContextLLM (delegating to the inner context
// path when available, so cancellation and endpoint errors still
// propagate), and when the endpoint can also author tests (it has a
// GenerateTest method, like internal/model) the returned value keeps
// that too. Generation calls are never cached because the generation
// loop relies on per-nonce prompts already being unique; failed
// completions are never cached either.
func Cached(llm LLM) LLM {
	c := &cachedLLM{inner: llm, memo: map[string]string{}}
	if g, ok := llm.(generator); ok {
		return &cachedAuthor{cachedLLM: c, gen: g}
	}
	return c
}

// generator mirrors the authoring side of internal/model without
// importing it (judge must stay model-agnostic).
type generator interface {
	GenerateTest(prompt string) (code, defect string)
}

type cachedLLM struct {
	inner LLM
	mu    sync.Mutex
	memo  map[string]string
}

func (c *cachedLLM) lookup(prompt string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, ok := c.memo[prompt]
	return resp, ok
}

func (c *cachedLLM) store(prompt, resp string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memo[prompt] = resp
}

func (c *cachedLLM) Complete(prompt string) string {
	if resp, ok := c.lookup(prompt); ok {
		return resp
	}
	// The endpoint call runs outside the lock so concurrent misses on
	// different prompts do not serialise; duplicate concurrent misses
	// on the same prompt do duplicate work but stay correct because
	// deterministic endpoints answer identically.
	resp := c.inner.Complete(prompt)
	c.store(prompt, resp)
	return resp
}

// CompleteContext keeps the wrapped endpoint's cancellation and error
// propagation usable through the cache: Evaluate type-asserts
// ContextLLM and would otherwise fall back to the blocking, no-error
// Complete path whenever the cache is on.
func (c *cachedLLM) CompleteContext(ctx context.Context, prompt string) (string, error) {
	if resp, ok := c.lookup(prompt); ok {
		return resp, nil
	}
	var resp string
	if cl, ok := c.inner.(ContextLLM); ok {
		r, err := cl.CompleteContext(ctx, prompt)
		if err != nil {
			return "", err
		}
		resp = r
	} else {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		resp = c.inner.Complete(prompt)
	}
	c.store(prompt, resp)
	return resp, nil
}

type cachedAuthor struct {
	*cachedLLM
	gen generator
}

func (c *cachedAuthor) GenerateTest(prompt string) (code, defect string) {
	return c.gen.GenerateTest(prompt)
}
