package llm4vv

// Tests for the evaluation-at-scale layer: the sharded scheduler's
// parity with flat per-file scheduling, batched judging through
// BatchLLM, and the persistent run store's resume semantics —
// including the headline contract that an interrupted stored run,
// resumed, re-judges zero completed files and reproduces the metrics
// of an uninterrupted run exactly.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/judge"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/testlang"
)

// countingLLM wraps the simulated model, counting every prompt that
// reaches the endpoint (single or batched path) — the probe for
// "resume re-judges zero completed files". Registering it without
// CompleteBatch would hide the batch path, so it forwards both.
type countingLLM struct {
	inner *model.Model
	n     atomic.Int64
}

func (c *countingLLM) Complete(prompt string) string {
	c.n.Add(1)
	return c.inner.Complete(prompt)
}

func (c *countingLLM) CompleteBatch(ctx context.Context, prompts []string) ([]string, error) {
	c.n.Add(int64(len(prompts)))
	return c.inner.CompleteBatch(ctx, prompts)
}

// registerCounting registers a fresh counting backend under a unique
// name (the registry forbids re-registration) and returns the counter.
var countingSerial atomic.Int64

func registerCounting(t *testing.T) (string, *countingLLM) {
	t.Helper()
	c := &countingLLM{}
	name := fmt.Sprintf("test-counting-%d", countingSerial.Add(1))
	RegisterBackend(name, func(seed uint64) judge.LLM {
		c.inner = model.New(seed)
		return c
	})
	return name, c
}

// TestShardedSchedulerParity: the sharded work-stealing scheduler must
// produce results identical to flat per-file scheduling (PR 1's
// parallelFor granularity: shard size 1) for the same seed, across
// worker counts and shard sizes — sharding changes scheduling, never
// results.
func TestShardedSchedulerParity(t *testing.T) {
	s := smallSpec(testlang.LangC, testlang.LangCPP, testlang.LangFortran)
	type cfg struct {
		workers, shard int
	}
	configs := []cfg{{1, 1}, {1, 0}, {4, 1}, {4, 3}, {8, 0}, {2, 1000}}
	var ref Summary0
	for i, c := range configs {
		r, err := NewRunner(WithWorkers(c.workers), WithShardSize(c.shard))
		if err != nil {
			t.Fatal(err)
		}
		sum, err := r.DirectProbing(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		got := Summary0{sum.Accuracy(), sum.Bias(), sum.Total, sum.Mistakes}
		if i == 0 {
			ref = got
			continue
		}
		if got != ref {
			t.Errorf("workers=%d shard=%d diverged: %+v vs %+v", c.workers, c.shard, got, ref)
		}
	}
	// Pipeline path: per-file verdicts must match across shard sizes.
	base, _, err := mustRunner(t, WithWorkers(1), WithShardSize(1)).ValidateSuite(context.Background(), s, judge.AgentDirect)
	if err != nil {
		t.Fatal(err)
	}
	sharded, stats, err := mustRunner(t, WithWorkers(4), WithShardSize(5)).ValidateSuite(context.Background(), s, judge.AgentDirect)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if base[i].Valid != sharded[i].Valid || base[i].Verdict != sharded[i].Verdict {
			t.Errorf("file %d (%s): flat valid=%v/%v sharded valid=%v/%v",
				i, base[i].Name, base[i].Valid, base[i].Verdict, sharded[i].Valid, sharded[i].Verdict)
		}
	}
	if stats.JudgeBatches > stats.JudgeCalls {
		t.Errorf("stats: batches %d > calls %d", stats.JudgeBatches, stats.JudgeCalls)
	}
}

// Summary0 is the comparable core of a metrics summary.
type Summary0 struct {
	Acc      float64
	Bias     float64
	Total    int
	Mistakes int
}

func mustRunner(t *testing.T, opts ...Option) *Runner {
	t.Helper()
	r, err := NewRunner(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestBatchedJudgingParity: the simulated backend implements BatchLLM,
// and batched submission must not change a single verdict relative to
// an endpoint that can only complete one prompt at a time.
func TestBatchedJudgingParity(t *testing.T) {
	// A view of the model stripped down to the bare LLM contract.
	RegisterBackend("test-no-batch", func(seed uint64) judge.LLM {
		return singleOnlyLLM{model.New(seed)}
	})
	s := smallSpec()
	batched, err := mustRunner(t, WithShardSize(4)).DirectProbing(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	single, err := mustRunner(t, WithBackend("test-no-batch"), WithShardSize(4)).DirectProbing(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batched, single) {
		t.Errorf("batched and single-prompt judging diverged:\n batched %+v\n single  %+v", batched, single)
	}
}

type singleOnlyLLM struct{ m *model.Model }

func (s singleOnlyLLM) Complete(prompt string) string { return s.m.Complete(prompt) }

// TestResumeSkipsCompletedFiles: a store-backed run followed by a
// resumed run under the same configuration re-judges nothing; a
// resumed run under a different seed shares nothing.
func TestResumeSkipsCompletedFiles(t *testing.T) {
	name, c := registerCounting(t)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	s := smallSpec()

	first := mustRunner(t, WithBackend(name), WithStore(path), WithShardSize(3))
	sum1, err := first.DirectProbing(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	judged := c.n.Load()
	if judged != int64(s.Total()) {
		t.Fatalf("first run judged %d files, want %d", judged, s.Total())
	}

	resumed := mustRunner(t, WithBackend(name), WithStore(path), WithResume(true), WithShardSize(3))
	sum2, err := resumed.DirectProbing(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}
	if got := c.n.Load() - judged; got != 0 {
		t.Errorf("resumed run re-judged %d completed files, want 0", got)
	}
	if !reflect.DeepEqual(sum1, sum2) {
		t.Errorf("resumed metrics diverged from original:\n %+v\n %+v", sum1, sum2)
	}

	// A different seed is a different key: nothing is shared.
	other := mustRunner(t, WithBackend(name), WithSeed(DefaultModelSeed+1), WithStore(path), WithResume(true))
	if _, err := other.DirectProbing(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	if err := other.Close(); err != nil {
		t.Fatal(err)
	}
	if got := c.n.Load() - judged; got != int64(s.Total()) {
		t.Errorf("different-seed resume judged %d files, want %d (no sharing across seeds)", got, s.Total())
	}
}

// TestInterruptedRunResumesExactly is the acceptance-criteria test:
// cancel a stored run mid-flight, resume it, and require (a) zero
// stored files re-judged and (b) metrics byte-identical to a run that
// was never interrupted.
func TestInterruptedRunResumesExactly(t *testing.T) {
	name, c := registerCounting(t)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	s := smallSpec(testlang.LangC, testlang.LangCPP, testlang.LangFortran)

	// Uninterrupted reference, store-less.
	ref, err := mustRunner(t, WithBackend(name), WithShardSize(2)).DirectProbing(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	c.n.Store(0)

	// Interrupted stored run: cancel after the first few files seal.
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	interrupted := mustRunner(t,
		WithBackend(name), WithStore(path), WithShardSize(2), WithWorkers(2),
		WithProgress(func(p Progress) {
			if p.Done >= 3 {
				once.Do(cancel)
			}
		}))
	if _, err := interrupted.DirectProbing(ctx, s); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if err := interrupted.Close(); err != nil {
		t.Fatal(err)
	}

	stored := storedCount(t, path)
	if stored == 0 || stored >= s.Total() {
		t.Fatalf("interruption stored %d of %d files; the test needs a partial run", stored, s.Total())
	}
	c.n.Store(0)

	// Resume and finish.
	resumed := mustRunner(t, WithBackend(name), WithStore(path), WithResume(true), WithShardSize(2), WithWorkers(2))
	got, err := resumed.DirectProbing(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}
	if rejudged := int(c.n.Load()) - (s.Total() - stored); rejudged != 0 {
		t.Errorf("resumed run re-judged %d already-completed files, want 0 (judged %d, missing %d)",
			rejudged, c.n.Load(), s.Total()-stored)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("resumed metrics differ from uninterrupted run:\n resumed %+v\n ref     %+v", got, ref)
	}
}

// storedCount reopens a store file and counts its records.
func storedCount(t *testing.T, path string) int {
	t.Helper()
	r := mustRunner(t, WithStore(path), WithResume(true))
	defer r.Close()
	return r.store.Len()
}

// TestValidateSuiteResume: the pipeline path reconstructs stage flags
// and verdicts from the store — a fully resumed run touches the
// endpoint zero times and reproduces every per-file result.
func TestValidateSuiteResume(t *testing.T) {
	name, c := registerCounting(t)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	s := smallSpec(testlang.LangC, testlang.LangCPP, testlang.LangFortran)

	first := mustRunner(t, WithBackend(name), WithStore(path), WithRecordAll(true))
	res1, _, err := first.ValidateSuite(context.Background(), s, judge.AgentDirect)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	c.n.Store(0)

	resumed := mustRunner(t, WithBackend(name), WithStore(path), WithResume(true), WithRecordAll(true))
	res2, stats, err := resumed.ValidateSuite(context.Background(), s, judge.AgentDirect)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}
	if c.n.Load() != 0 {
		t.Errorf("fully-stored resume still judged %d files", c.n.Load())
	}
	if stats.Compiles != 0 || stats.Executions != 0 || stats.JudgeCalls != 0 {
		t.Errorf("fully-stored resume redid work: %+v", stats)
	}
	if len(res1) != len(res2) {
		t.Fatalf("result lengths differ: %d vs %d", len(res1), len(res2))
	}
	for i := range res1 {
		a, b := res1[i], res2[i]
		if a.Valid != b.Valid || a.Verdict != b.Verdict || a.CompileOK != b.CompileOK ||
			a.ExecRan != b.ExecRan || a.ExecOK != b.ExecOK || a.JudgeRan != b.JudgeRan {
			t.Errorf("file %d (%s): live %+v vs resumed %+v", i, a.Name, a, b)
		}
	}

	// Record-all and short-circuit records never mix: a short-circuit
	// resume of the same suite finds no usable records for files whose
	// stage coverage differs, rather than silently reusing them.
	c.n.Store(0)
	shortR := mustRunner(t, WithBackend(name), WithStore(path), WithResume(true), WithRecordAll(false))
	if _, _, err := shortR.ValidateSuite(context.Background(), s, judge.AgentDirect); err != nil {
		t.Fatal(err)
	}
	if err := shortR.Close(); err != nil {
		t.Fatal(err)
	}
	if c.n.Load() == 0 {
		t.Error("short-circuit resume reused record-all records (keys must differ)")
	}
}

// TestMigratedStoreResumesExactly: a store written before the
// segmented-log redesign (a single append-only JSONL file — exactly
// what a default-threshold run produces at this size) reopened under
// aggressive segmentation must seal into segments on open and then
// serve a resumed run with zero re-judges and identical metrics. This
// is the migration half of the PR's parity contract.
func TestMigratedStoreResumesExactly(t *testing.T) {
	name, c := registerCounting(t)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	s := smallSpec(testlang.LangC, testlang.LangCPP)

	// Phase 1: the "pre-PR" store — one flat JSONL file, no segments.
	first := mustRunner(t, WithBackend(name), WithStore(path), WithShardSize(3))
	sum1, err := first.DirectProbing(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	judged := c.n.Load()

	// Phase 2: reopen with a 1-byte seal threshold. Open must migrate
	// the flat file into sealed segments without losing a record.
	resumed := mustRunner(t, WithBackend(name), WithStore(path), WithResume(true),
		WithStoreOptions(store.Options{SealBytes: 1, MergeThreshold: -1}), WithShardSize(3))
	sum2, err := resumed.DirectProbing(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	segs := resumed.store.Stats().SegmentCount()
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}
	if segs == 0 {
		t.Fatal("migration did not seal the flat store into segments; the test is vacuous")
	}
	if got := c.n.Load() - judged; got != 0 {
		t.Errorf("resume against migrated store re-judged %d files, want 0", got)
	}
	if !reflect.DeepEqual(sum1, sum2) {
		t.Errorf("migrated-store resume diverged:\n flat      %+v\n segmented %+v", sum1, sum2)
	}

	// Phase 3: a default Open must read the now-segmented store too —
	// migration is not one-way.
	again := mustRunner(t, WithBackend(name), WithStore(path), WithResume(true), WithShardSize(3))
	sum3, err := again.DirectProbing(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if err := again.Close(); err != nil {
		t.Fatal(err)
	}
	if got := c.n.Load() - judged; got != 0 {
		t.Errorf("default reopen of segmented store re-judged %d files, want 0", got)
	}
	if !reflect.DeepEqual(sum1, sum3) {
		t.Errorf("segmented store read back by default options diverged:\n %+v\n %+v", sum1, sum3)
	}
}

// TestFreshSegmentedStoreParity: a run recording into an aggressively
// segmented store from the start (sealing constantly, merging in the
// background) must produce metrics identical to a store-less run, and
// resuming from that store must re-judge nothing — segmentation
// changes the layout on disk, never the results.
func TestFreshSegmentedStoreParity(t *testing.T) {
	name, c := registerCounting(t)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	s := smallSpec(testlang.LangC, testlang.LangFortran)

	ref, err := mustRunner(t, WithBackend(name), WithShardSize(2)).DirectProbing(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	c.n.Store(0)

	opts := store.Options{SealBytes: 1, MergeThreshold: 2}
	segged := mustRunner(t, WithBackend(name), WithStore(path), WithStoreOptions(opts),
		WithShardSize(2), WithWorkers(2))
	got, err := segged.DirectProbing(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if err := segged.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("segmented-store run diverged from store-less run:\n segmented %+v\n ref       %+v", got, ref)
	}
	if c.n.Load() != int64(s.Total()) {
		t.Fatalf("segmented run judged %d files, want %d", c.n.Load(), s.Total())
	}
	c.n.Store(0)

	resumed := mustRunner(t, WithBackend(name), WithStore(path), WithStoreOptions(opts),
		WithResume(true), WithShardSize(2), WithWorkers(2))
	sum2, err := resumed.DirectProbing(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}
	if c.n.Load() != 0 {
		t.Errorf("resume from segmented store re-judged %d files, want 0", c.n.Load())
	}
	if !reflect.DeepEqual(sum2, ref) {
		t.Errorf("segmented-store resume diverged from store-less run:\n %+v\n %+v", sum2, ref)
	}
}

// TestCompareScenario: the cross-backend sweep covers every registered
// backend and dispatches through the generic experiment path.
func TestCompareScenario(t *testing.T) {
	r := mustRunner(t)
	res, err := RunExperiment(context.Background(), r, "compare",
		ExperimentParams{Dialects: []spec.Dialect{spec.OpenACC}, Scale: 16})
	if err != nil {
		t.Fatal(err)
	}
	cmp, ok := res.(*CompareScenarioResult)
	if !ok {
		t.Fatalf("compare returned %T", res)
	}
	if len(cmp.Backends) != len(Backends()) {
		t.Errorf("compare covered %d backends, registry has %d", len(cmp.Backends), len(Backends()))
	}
	found := false
	for _, b := range cmp.Backends {
		if b == DefaultBackend {
			found = true
			sum := cmp.Summaries[b][spec.OpenACC]
			if sum.Total == 0 {
				t.Errorf("default backend judged zero files")
			}
		}
	}
	if !found {
		t.Error("compare skipped the default backend")
	}
	if !strings.Contains(res.Report(), DefaultBackend) {
		t.Errorf("compare report lacks backend name:\n%s", res.Report())
	}
}
