package llm4vv

// The paper's fixed experiments, kept as free functions for
// compatibility. Each is now a thin wrapper constructing a default
// Runner and delegating to its context-aware method; new code should
// build a Runner once (choosing backend, workers, caching, progress)
// and call the methods — or dispatch registered experiments through
// RunExperiment — directly.

import (
	"context"

	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/probe"
)

// DefaultModelSeed seeds the simulated LLM for all published
// experiment numbers.
const DefaultModelSeed = 33

// seededRunner builds the default-backend Runner the deprecated
// wrappers run on. The only construction failure is an unknown backend
// name, impossible here, so errors reduce to a panic guard.
func seededRunner(modelSeed uint64, opts ...Option) *Runner {
	r, err := NewRunner(append([]Option{WithSeed(modelSeed)}, opts...)...)
	if err != nil {
		panic("llm4vv: default runner construction failed: " + err.Error())
	}
	return r
}

// RunDirectProbing is the Part-One experiment: judge every file of the
// suite with the direct analysis prompt (no tools, no pipeline) and
// score the verdicts. It reproduces Tables I and II, and its summaries
// aggregate into Table III.
//
// Deprecated: use NewRunner and Runner.DirectProbing for cancellation,
// backend selection, and progress streaming.
func RunDirectProbing(spec SuiteSpec, modelSeed uint64) (metrics.Summary, error) {
	return seededRunner(modelSeed).DirectProbing(context.Background(), spec)
}

// PartTwoResult carries every Part-Two measurement for one dialect:
// the two agent-based judges scored alone (Tables VII-IX) and the two
// pipelines built on them (Tables IV-VI), all from the same record-all
// pipeline runs, exactly as the paper gathered them.
type PartTwoResult struct {
	// LLMJ1 / LLMJ2: agent-based judges with the direct and indirect
	// analysis prompts.
	LLMJ1 metrics.Summary
	LLMJ2 metrics.Summary
	// Pipeline1 / Pipeline2: validation-pipeline verdicts computed
	// with each judge's evaluations.
	Pipeline1 metrics.Summary
	Pipeline2 metrics.Summary
	// Direct is the non-agent judge on the same suite, for the
	// Figure 5/6 three-way comparison.
	Direct metrics.Summary
	// Stats from the first pipeline run (throughput accounting).
	Stats pipeline.Stats
}

// RunPartTwo executes the Part-Two experiment for one dialect.
//
// Deprecated: use NewRunner and Runner.PartTwo.
func RunPartTwo(spec SuiteSpec, modelSeed uint64) (PartTwoResult, error) {
	return seededRunner(modelSeed).PartTwo(context.Background(), spec)
}

// AblationStagesResult scores the pipeline with progressively more
// stages enabled: compile only, compile+execute, and the full pipeline
// with the agent-direct judge. It quantifies DESIGN.md ablation A3
// (how much accuracy each stage contributes).
type AblationStagesResult struct {
	CompileOnly   metrics.Summary
	CompileAndRun metrics.Summary
	FullPipeline  metrics.Summary
}

// RunAblationStages runs ablation A3 on the Part-Two suite.
//
// Deprecated: use NewRunner and Runner.AblationStages.
func RunAblationStages(spec SuiteSpec, modelSeed uint64) (AblationStagesResult, error) {
	return seededRunner(modelSeed).AblationStages(context.Background(), spec)
}

// AblationAgentInfoResult compares the same model judging the same
// suite with and without tool information (DESIGN.md ablation A2): the
// direct prompt versus the agent-direct prompt, holding everything
// else fixed.
type AblationAgentInfoResult struct {
	WithoutTools metrics.Summary
	WithTools    metrics.Summary
}

// RunAblationAgentInfo runs ablation A2.
//
// Deprecated: use NewRunner and Runner.AblationAgentInfo.
func RunAblationAgentInfo(spec SuiteSpec, modelSeed uint64) (AblationAgentInfoResult, error) {
	return seededRunner(modelSeed).AblationAgentInfo(context.Background(), spec)
}

// PipelineThroughputResult measures the short-circuiting win
// (DESIGN.md ablation A1): stage executions with and without early
// exit.
type PipelineThroughputResult struct {
	ShortCircuit pipeline.Stats
	RecordAll    pipeline.Stats
}

// RunPipelineThroughput runs ablation A1 on the given suite.
//
// Deprecated: use NewRunner (WithWorkers) and
// Runner.PipelineThroughput.
func RunPipelineThroughput(spec SuiteSpec, modelSeed uint64, workers int) (PipelineThroughputResult, error) {
	return seededRunner(modelSeed, WithWorkers(workers)).PipelineThroughput(context.Background(), spec)
}

// Issues re-exports the probe issue ids for example programs.
var Issues = []probe.Issue{
	probe.IssueDirective, probe.IssueBracket, probe.IssueUndeclared,
	probe.IssueRandom, probe.IssueTruncated, probe.IssueNone,
}
