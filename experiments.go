package llm4vv

import (
	"runtime"
	"sync"

	"repro/internal/agent"
	"repro/internal/judge"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/probe"
)

// DefaultModelSeed seeds the simulated LLM for all published
// experiment numbers.
const DefaultModelSeed = 33

// NewModel returns the simulated deepseek-coder-33B-instruct endpoint.
func NewModel(seed uint64) judge.LLM { return model.New(seed) }

// RunDirectProbing is the Part-One experiment: judge every file of the
// suite with the direct analysis prompt (no tools, no pipeline) and
// score the verdicts. It reproduces Tables I and II, and its summaries
// aggregate into Table III.
func RunDirectProbing(spec SuiteSpec, modelSeed uint64) (metrics.Summary, error) {
	suite, err := BuildSuite(spec)
	if err != nil {
		return metrics.Summary{}, err
	}
	j := &judge.Judge{LLM: NewModel(modelSeed), Style: judge.Direct, Dialect: spec.Dialect}
	outcomes := make([]metrics.Outcome, len(suite))
	parallelFor(len(suite), func(i int) {
		ev := j.Evaluate(suite[i].Source, nil)
		outcomes[i] = metrics.Outcome{
			Issue:       suite[i].Issue,
			JudgedValid: ev.Verdict == judge.Valid,
		}
	})
	return metrics.Score(spec.Dialect, outcomes), nil
}

// PartTwoResult carries every Part-Two measurement for one dialect:
// the two agent-based judges scored alone (Tables VII-IX) and the two
// pipelines built on them (Tables IV-VI), all from the same record-all
// pipeline runs, exactly as the paper gathered them.
type PartTwoResult struct {
	// LLMJ1 / LLMJ2: agent-based judges with the direct and indirect
	// analysis prompts.
	LLMJ1 metrics.Summary
	LLMJ2 metrics.Summary
	// Pipeline1 / Pipeline2: validation-pipeline verdicts computed
	// with each judge's evaluations.
	Pipeline1 metrics.Summary
	Pipeline2 metrics.Summary
	// Direct is the non-agent judge on the same suite, for the
	// Figure 5/6 three-way comparison.
	Direct metrics.Summary
	// Stats from the first pipeline run (throughput accounting).
	Stats pipeline.Stats
}

// RunPartTwo executes the Part-Two experiment for one dialect.
func RunPartTwo(spec SuiteSpec, modelSeed uint64) (PartTwoResult, error) {
	suite, err := BuildSuite(spec)
	if err != nil {
		return PartTwoResult{}, err
	}
	inputs := make([]pipeline.Input, len(suite))
	for i, pf := range suite {
		inputs[i] = pipeline.Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
	}
	llm := NewModel(modelSeed)
	tools := agent.NewTools(spec.Dialect)
	workers := runtime.GOMAXPROCS(0)

	var res PartTwoResult
	run := func(style judge.Style) (judgeSum, pipeSum metrics.Summary, stats pipeline.Stats) {
		results, st := pipeline.Run(pipeline.Config{
			Tools:          tools,
			Judge:          &judge.Judge{LLM: llm, Style: style, Dialect: spec.Dialect},
			CompileWorkers: workers,
			ExecWorkers:    workers,
			JudgeWorkers:   workers,
			RecordAll:      true,
		}, inputs)
		judgeOut := make([]metrics.Outcome, len(results))
		pipeOut := make([]metrics.Outcome, len(results))
		for i, r := range results {
			judgeOut[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: r.Verdict == judge.Valid}
			pipeOut[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: r.Valid}
		}
		return metrics.Score(spec.Dialect, judgeOut), metrics.Score(spec.Dialect, pipeOut), st
	}
	res.LLMJ1, res.Pipeline1, res.Stats = run(judge.AgentDirect)
	res.LLMJ2, res.Pipeline2, _ = run(judge.AgentIndirect)

	// The non-agent judge on the same suite (Figures 5/6 baseline).
	direct := &judge.Judge{LLM: llm, Style: judge.Direct, Dialect: spec.Dialect}
	outcomes := make([]metrics.Outcome, len(suite))
	parallelFor(len(suite), func(i int) {
		ev := direct.Evaluate(suite[i].Source, nil)
		outcomes[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: ev.Verdict == judge.Valid}
	})
	res.Direct = metrics.Score(spec.Dialect, outcomes)
	return res, nil
}

// AblationStages scores the pipeline with progressively more stages
// enabled: compile only, compile+execute, and the full pipeline with
// the agent-direct judge. It quantifies DESIGN.md ablation A3 (how
// much accuracy each stage contributes).
type AblationStagesResult struct {
	CompileOnly   metrics.Summary
	CompileAndRun metrics.Summary
	FullPipeline  metrics.Summary
}

// RunAblationStages runs ablation A3 on the Part-Two suite.
func RunAblationStages(spec SuiteSpec, modelSeed uint64) (AblationStagesResult, error) {
	suite, err := BuildSuite(spec)
	if err != nil {
		return AblationStagesResult{}, err
	}
	tools := agent.NewTools(spec.Dialect)
	workers := runtime.GOMAXPROCS(0)

	score := func(judgeOn bool, execOn bool) metrics.Summary {
		var jd *judge.Judge
		if judgeOn {
			jd = &judge.Judge{LLM: NewModel(modelSeed), Style: judge.AgentDirect, Dialect: spec.Dialect}
		}
		inputs := make([]pipeline.Input, len(suite))
		for i, pf := range suite {
			inputs[i] = pipeline.Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
		}
		results, _ := pipeline.Run(pipeline.Config{
			Tools:          tools,
			Judge:          jd,
			CompileWorkers: workers,
			ExecWorkers:    workers,
			JudgeWorkers:   workers,
			RecordAll:      true,
		}, inputs)
		out := make([]metrics.Outcome, len(results))
		for i, r := range results {
			valid := r.CompileOK
			if execOn && r.ExecRan {
				valid = valid && r.ExecOK
			}
			if judgeOn {
				valid = valid && r.Verdict == judge.Valid
			}
			out[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: valid}
		}
		return metrics.Score(spec.Dialect, out)
	}
	return AblationStagesResult{
		CompileOnly:   score(false, false),
		CompileAndRun: score(false, true),
		FullPipeline:  score(true, true),
	}, nil
}

// AblationAgentInfo compares the same model judging the same suite
// with and without tool information (DESIGN.md ablation A2): the
// direct prompt versus the agent-direct prompt, holding everything
// else fixed.
type AblationAgentInfoResult struct {
	WithoutTools metrics.Summary
	WithTools    metrics.Summary
}

// RunAblationAgentInfo runs ablation A2.
func RunAblationAgentInfo(spec SuiteSpec, modelSeed uint64) (AblationAgentInfoResult, error) {
	suite, err := BuildSuite(spec)
	if err != nil {
		return AblationAgentInfoResult{}, err
	}
	llm := NewModel(modelSeed)
	tools := agent.NewTools(spec.Dialect)
	direct := &judge.Judge{LLM: llm, Style: judge.Direct, Dialect: spec.Dialect}
	agentJudge := &judge.Judge{LLM: llm, Style: judge.AgentDirect, Dialect: spec.Dialect}

	without := make([]metrics.Outcome, len(suite))
	with := make([]metrics.Outcome, len(suite))
	parallelFor(len(suite), func(i int) {
		pf := suite[i]
		evD := direct.Evaluate(pf.Source, nil)
		without[i] = metrics.Outcome{Issue: pf.Issue, JudgedValid: evD.Verdict == judge.Valid}
		outcome := tools.Gather(pf.Name, pf.Source, pf.Lang)
		evA := agentJudge.Evaluate(pf.Source, &outcome.Info)
		with[i] = metrics.Outcome{Issue: pf.Issue, JudgedValid: evA.Verdict == judge.Valid}
	})
	return AblationAgentInfoResult{
		WithoutTools: metrics.Score(spec.Dialect, without),
		WithTools:    metrics.Score(spec.Dialect, with),
	}, nil
}

// PipelineThroughput measures the short-circuiting win (DESIGN.md
// ablation A1): stage executions with and without early exit.
type PipelineThroughputResult struct {
	ShortCircuit pipeline.Stats
	RecordAll    pipeline.Stats
}

// RunPipelineThroughput runs ablation A1 on the given suite.
func RunPipelineThroughput(spec SuiteSpec, modelSeed uint64, workers int) (PipelineThroughputResult, error) {
	suite, err := BuildSuite(spec)
	if err != nil {
		return PipelineThroughputResult{}, err
	}
	inputs := make([]pipeline.Input, len(suite))
	for i, pf := range suite {
		inputs[i] = pipeline.Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
	}
	tools := agent.NewTools(spec.Dialect)
	var out PipelineThroughputResult
	for _, recordAll := range []bool{false, true} {
		_, st := pipeline.Run(pipeline.Config{
			Tools:          tools,
			Judge:          &judge.Judge{LLM: NewModel(modelSeed), Style: judge.AgentDirect, Dialect: spec.Dialect},
			CompileWorkers: workers,
			ExecWorkers:    workers,
			JudgeWorkers:   workers,
			RecordAll:      recordAll,
		}, inputs)
		if recordAll {
			out.RecordAll = st
		} else {
			out.ShortCircuit = st
		}
	}
	return out, nil
}

// parallelFor runs fn(i) for i in [0,n) across GOMAXPROCS workers.
func parallelFor(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Issues re-exports the probe issue ids for example programs.
var Issues = []probe.Issue{
	probe.IssueDirective, probe.IssueBracket, probe.IssueUndeclared,
	probe.IssueRandom, probe.IssueTruncated, probe.IssueNone,
}
