package llm4vv

// Tests for the fleet tier seen from the public API: an experiment
// swept through a consistent-hash router over several in-process
// daemons — all serving the default backend and seed — must reproduce
// the in-process report byte for byte, including when one replica is
// killed mid-sweep. Placement is invisible in the results by design;
// the fleet is a throughput device, not a semantic one.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/server"
	"repro/internal/spec"
)

// startFleetReplica boots one in-process daemon over the default
// backend and seed, optionally behind a wrapper, and returns its
// host:port.
func startFleetReplica(t *testing.T, wrap func(http.Handler) http.Handler) string {
	t.Helper()
	llm, err := NewBackend(DefaultBackend, DefaultModelSeed)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{LLM: llm, Backend: DefaultBackend, Seed: DefaultModelSeed})
	t.Cleanup(srv.Close)
	h := http.Handler(srv.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// TestExperimentViaFleetParity: a part1 sweep routed across three
// replicas by the fleet backend returns the same report as in-process,
// and the prompts genuinely spread over the ring.
func TestExperimentViaFleetParity(t *testing.T) {
	addrs := startFleetReplica(t, nil) + "," + startFleetReplica(t, nil) + "," + startFleetReplica(t, nil)
	params := ExperimentParams{Dialects: []spec.Dialect{spec.OpenACC}, Scale: 8}

	local := newTestRunner(t)
	lres, err := RunExperiment(context.Background(), local, "part1", params)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := NewRunner(WithBackend("fleet:" + addrs))
	if err != nil {
		t.Fatal(err)
	}
	fres, err := RunExperiment(context.Background(), fr, "part1", params)
	if err != nil {
		t.Fatal(err)
	}
	if lres.Report() != fres.Report() {
		t.Errorf("part1 report diverged through the fleet:\n--- local ---\n%s\n--- fleet ---\n%s",
			lres.Report(), fres.Report())
	}

	rt, err := fleetRouter(addrs)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	var total int64
	for _, st := range rt.Replicas() {
		if st.Prompts > 0 {
			served++
		}
		total += st.Prompts
	}
	if served < 2 {
		t.Errorf("fleet sweep used %d of 3 replicas; ring not splitting", served)
	}
	if total == 0 {
		t.Error("fleet sweep routed zero prompts")
	}
}

// TestFleetReplicaKillMidSweep is the failover acceptance check: one
// of three replicas dies after serving its first shard, the sweep
// completes with every verdict intact, and the report stays
// byte-identical to in-process. The dead replica keeps answering
// health probes here, so it stays in the ring and every later shard
// that hashes to it exercises the request-path failover rather than a
// quiet eviction.
func TestFleetReplicaKillMidSweep(t *testing.T) {
	var completions, afterKill atomic.Int64
	kill := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/v1/complete") {
				if completions.Add(1) > 1 {
					afterKill.Add(1)
					http.Error(w, "replica killed mid-sweep", http.StatusServiceUnavailable)
					return
				}
			}
			h.ServeHTTP(w, r)
		})
	}
	addrs := startFleetReplica(t, kill) + "," + startFleetReplica(t, nil) + "," + startFleetReplica(t, nil)
	params := ExperimentParams{Dialects: []spec.Dialect{spec.OpenACC}, Scale: 16}
	// Small shards split the sweep into many routed batches, so the
	// kill lands mid-run with later shards still owed to the victim.
	opts := []Option{WithShardSize(2)}

	local, err := NewRunner(opts...)
	if err != nil {
		t.Fatal(err)
	}
	lres, err := RunExperiment(context.Background(), local, "part1", params)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := NewRunner(append(opts, WithBackend("fleet:"+addrs))...)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := RunExperiment(context.Background(), fr, "part1", params)
	if err != nil {
		t.Fatalf("sweep failed after replica kill: %v", err)
	}
	if lres.Report() != fres.Report() {
		t.Errorf("report diverged after replica kill:\n--- local ---\n%s\n--- fleet ---\n%s",
			lres.Report(), fres.Report())
	}
	if completions.Load() == 0 {
		t.Error("killed replica never saw a request; kill did not land mid-sweep")
	}
	if afterKill.Load() > 0 {
		rt, err := fleetRouter(addrs)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Stats().Failovers == 0 {
			t.Error("requests hit the dead replica but no failovers were recorded")
		}
	}
}

// TestRegisterFleetBackendIdempotent mirrors the remote variant: the
// name is stable, appears once in Backends(), and scheme-resolved
// fleet names never leak into the registry uninvited.
func TestRegisterFleetBackendIdempotent(t *testing.T) {
	addrs := startFleetReplica(t, nil) + "," + startFleetReplica(t, nil)
	a, err := RegisterFleetBackend(addrs)
	if err != nil {
		t.Fatal(err)
	}
	// White-box cleanup: drop the registration so later compare sweeps
	// do not dial the torn-down test replicas.
	defer func() {
		backendRegistry.Lock()
		delete(backendRegistry.factories, a)
		backendRegistry.Unlock()
	}()
	b, err := RegisterFleetBackend(addrs)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a != "fleet:"+addrs {
		t.Fatalf("RegisterFleetBackend returned %q then %q", a, b)
	}
	count := 0
	for _, name := range Backends() {
		if name == a {
			count++
		}
	}
	if count != 1 {
		t.Errorf("backend %q registered %d times", a, count)
	}
	llm, err := NewBackend(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if llm == nil {
		t.Fatal("fleet backend resolved to a nil endpoint")
	}
	if _, err := RegisterFleetBackend(" ,, "); err == nil {
		t.Error("blank fleet address list accepted")
	}
}
