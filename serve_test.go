package llm4vv

// Tests for the judge-as-a-service layer seen from the public API: a
// daemon booted in-process fronts the simulated backend, registers as
// "remote:<addr>", and every experiment — including the cross-backend
// compare sweep — reproduces byte-identical metrics through it. The
// daemon lives for the whole test binary (the registry has no
// unregister), so later compare sweeps legitimately include it.
//
// Also here: the registry error paths added with the service —
// duplicate and empty registrations panic, nil-producing factories
// and unknown schemes error, Backends() stays sorted and distinct.

import (
	"context"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/judge"
	"repro/internal/model"
	"repro/internal/server"
	"repro/internal/spec"
)

// testDaemon boots one shared in-process judging daemon over the
// default backend and seed, and registers it concretely so it joins
// Backends() and the compare sweep. It stays up for the process
// lifetime by design.
var testDaemon struct {
	once sync.Once
	name string
	srv  *server.Server
}

func remoteBackendName(t *testing.T) string {
	t.Helper()
	testDaemon.once.Do(func() {
		llm, err := NewBackend(DefaultBackend, DefaultModelSeed)
		if err != nil {
			t.Fatal(err)
		}
		testDaemon.srv = server.New(server.Config{
			LLM:     llm,
			Backend: DefaultBackend,
			Seed:    DefaultModelSeed,
		})
		ts := httptest.NewServer(testDaemon.srv.Handler())
		testDaemon.name = RegisterRemoteBackend(strings.TrimPrefix(ts.URL, "http://"))
	})
	return testDaemon.name
}

// TestCompareViaRemoteParity is the acceptance check for the service:
// the compare experiment sweeps both the in-process backend and the
// daemon fronting the same backend and seed, and their accuracy/bias
// metrics must be byte-identical.
func TestCompareViaRemoteParity(t *testing.T) {
	remoteName := remoteBackendName(t)
	r := newTestRunner(t)
	res, err := RunExperiment(context.Background(), r, "compare",
		ExperimentParams{Dialects: []spec.Dialect{spec.OpenACC, spec.OpenMP}, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	cmp := res.(*CompareScenarioResult)
	for _, d := range cmp.Dialects {
		local, ok := cmp.Summaries[DefaultBackend][d]
		if !ok {
			t.Fatalf("compare missing in-process backend for %v", d)
		}
		viaDaemon, ok := cmp.Summaries[remoteName][d]
		if !ok {
			t.Fatalf("compare missing remote backend %q for %v", remoteName, d)
		}
		if local != viaDaemon {
			t.Errorf("%v metrics diverged through the daemon:\nlocal:  %+v\nremote: %+v", d, local, viaDaemon)
		}
		if local.Total == 0 {
			t.Errorf("%v compare judged zero files", d)
		}
	}
	if st := testDaemon.srv.Stats(); st.BatchRequests == 0 && st.Requests == 0 {
		t.Error("compare sweep never reached the daemon")
	}
}

// TestExperimentViaRemoteParity: a full experiment dispatched against
// the remote backend returns the same report as in-process.
func TestExperimentViaRemoteParity(t *testing.T) {
	remoteName := remoteBackendName(t)
	params := ExperimentParams{Dialects: []spec.Dialect{spec.OpenACC}, Scale: 8}

	local := newTestRunner(t)
	lres, err := RunExperiment(context.Background(), local, "part1", params)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRunner(WithBackend(remoteName))
	if err != nil {
		t.Fatal(err)
	}
	rres, err := RunExperiment(context.Background(), rr, "part1", params)
	if err != nil {
		t.Fatal(err)
	}
	if lres.Report() != rres.Report() {
		t.Errorf("part1 report diverged through the daemon:\n--- local ---\n%s\n--- remote ---\n%s",
			lres.Report(), rres.Report())
	}
}

func newTestRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegisterBackendDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterBackend did not panic")
		}
	}()
	RegisterBackend(DefaultBackend, func(seed uint64) judge.LLM { return model.New(seed) })
}

func TestRegisterBackendEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty-name RegisterBackend did not panic")
		}
	}()
	RegisterBackend("", func(seed uint64) judge.LLM { return model.New(seed) })
}

func TestRegisterBackendNilFactoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil-factory RegisterBackend did not panic")
		}
	}()
	RegisterBackend("never-registered", nil)
}

// TestNewBackendNilProducingFactory: a factory that returns a nil
// endpoint is surfaced as an error by NewBackend, not a downstream
// nil dereference. White-box: the broken factory is spliced in and
// removed around the check so no other test sees it.
func TestNewBackendNilProducingFactory(t *testing.T) {
	const name = "test-nil-endpoint"
	backendRegistry.Lock()
	backendRegistry.factories[name] = func(seed uint64) judge.LLM { return nil }
	backendRegistry.Unlock()
	defer func() {
		backendRegistry.Lock()
		delete(backendRegistry.factories, name)
		backendRegistry.Unlock()
	}()
	if _, err := NewBackend(name, 1); err == nil {
		t.Fatal("NewBackend returned a nil endpoint without error")
	} else if !strings.Contains(err.Error(), name) {
		t.Errorf("error %q does not name the broken backend", err)
	}
	if _, err := NewRunner(WithBackend(name)); err == nil {
		t.Fatal("NewRunner accepted a nil-producing backend")
	}
}

func TestBackendSchemeResolution(t *testing.T) {
	// The remote scheme resolves unregistered addresses (construction
	// is offline; nothing dials until judging starts).
	llm, err := NewBackend("remote:127.0.0.1:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if llm == nil {
		t.Fatal("remote scheme produced nil endpoint")
	}
	if _, ok := llm.(judge.BatchLLM); !ok {
		t.Error("remote endpoint does not implement judge.BatchLLM")
	}
	if _, ok := llm.(judge.ContextLLM); !ok {
		t.Error("remote endpoint does not implement judge.ContextLLM")
	}
	// Unknown schemes and unknown plain names both error.
	if _, err := NewBackend("nosuchscheme:arg", 1); err == nil {
		t.Error("unknown scheme resolved")
	}
	// Scheme-resolved names do not appear in Backends() until
	// registered concretely.
	for _, name := range Backends() {
		if name == "remote:127.0.0.1:1" {
			t.Error("ad-hoc scheme name leaked into Backends()")
		}
	}
}

func TestRegisterRemoteBackendIdempotent(t *testing.T) {
	// White-box cleanup: the unreachable test address must not stay
	// registered, or later compare sweeps would dial it.
	a := RegisterRemoteBackend("192.0.2.9:7777")
	defer func() {
		backendRegistry.Lock()
		delete(backendRegistry.factories, a)
		backendRegistry.Unlock()
	}()
	b := RegisterRemoteBackend("192.0.2.9:7777")
	if a != b || a != "remote:192.0.2.9:7777" {
		t.Fatalf("RegisterRemoteBackend returned %q then %q", a, b)
	}
	count := 0
	for _, name := range Backends() {
		if name == a {
			count++
		}
	}
	if count != 1 {
		t.Errorf("backend %q registered %d times", a, count)
	}
}

func TestBackendsSortedAndDistinct(t *testing.T) {
	names := Backends()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Backends() not sorted: %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("Backends() contains %q twice", n)
		}
		seen[n] = true
	}
}
