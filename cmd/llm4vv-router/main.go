// Command llm4vv-router is the fleet router: it fronts N llm4vvd
// replicas behind one address speaking the same wire protocol, so a
// worker pointed at it with -serve-addr (or -backend remote:<addr>)
// judges through the whole fleet without knowing it is one.
//
// Usage:
//
//	llm4vv-router -replicas ADDR1,ADDR2,... [-addr HOST:PORT] \
//	              [-id NAME] [-vnodes N] [-load-factor F] \
//	              [-health-interval D] [-queue N] [-bulk-queue N] \
//	              [-client-quota N] [-retry-after D] [-trace F] \
//	              [-fault SPEC] [-cpuprofile F] [-memprofile F]
//
// Prompts are placed by consistent hashing on their content key, so
// each replica's dedup store and cache stay authoritative for its
// share of the key space; bounded-load routing (-load-factor) spills
// hot arcs, and a background health loop (-health-interval) evicts
// dead replicas from the ring and readmits recoveries, with request
// failures failing over to the key's next successor. With every
// replica serving the same backend and seed, reports produced through
// the router are byte-identical to a single daemon's — including
// across a replica dying mid-sweep.
//
// Admission is priority-aware: requests carrying the X-LLM4VV-Priority
// header are classed interactive or bulk (unlabelled batch requests
// default to bulk — the sweep path), and bulk sheds with 429 +
// Retry-After at a lower ceiling (-bulk-queue) than interactive
// (-queue), so sweeps yield to humans under overload. -client-quota
// caps one client's in-flight prompts (keyed by X-LLM4VV-Client).
// /metrics serves the routing, admission, and per-replica counters in
// Prometheus text format; /healthz reports per-replica health.
//
// -trace appends one JSONL trace fragment per completed request trace
// to the given file: requests arriving with X-LLM4VV-Trace join the
// caller's distributed trace, the router's routing attempts (owner,
// failover hop, bounded-load spill) record spans under it, and the
// trace headers propagate to the replicas so their spans join too.
// Recent fragments are served on /debug/traces, the slowest span per
// stage is exported as llm4vv_trace_slow_exemplar, and all status
// lines — replica evictions, readmissions, 429 sheds with their
// trace_id — are structured logs (log/slog).
//
// -fault arms deterministic chaos injection from a seeded schedule —
// "<seed>:point=kind[@freq][/dur][#count],..." — at the router's named
// injection points: "remote.send" (connection resets, 5xx, latency,
// torn bodies on the router→replica hop; per-replica sub-points
// "remote.send:<host:port>") and "fleet.probe:<addr>" (failed health
// probes, flapping a replica in and out of the ring). Identical seeds
// and schedules reproduce identical fault sequences; injected counts
// surface in the llm4vv_resilience_* metric families. See
// docs/OPERATIONS.md §8 for the chaos runbook.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/perf"
	"repro/internal/remote"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "listen address")
	replicas := flag.String("replicas", "", "comma-separated llm4vvd replica addresses (required)")
	id := flag.String("id", "", "router instance name in /healthz and /metrics labels (default: the listen address)")
	vnodes := flag.Int("vnodes", fleet.DefaultVnodes, "virtual nodes per replica on the hash ring")
	loadFactor := flag.Float64("load-factor", fleet.DefaultLoadFactor, "bounded-load spill threshold over the fair per-replica share")
	healthInterval := flag.Duration("health-interval", fleet.DefaultHealthInterval, "background replica health-check period")
	queue := flag.Int("queue", fleet.DefaultQueueLimit, "admission: max in-flight prompts (interactive ceiling)")
	bulkQueue := flag.Int("bulk-queue", 0, "admission ceiling for bulk-class requests (default: half of -queue)")
	clientQuota := flag.Int("client-quota", 0, "max in-flight prompts per client, 0 = unlimited")
	retryAfter := flag.Duration("retry-after", fleet.DefaultRetryAfter, "back-off hint sent with 429 responses")
	traceFile := flag.String("trace", "", "append JSONL trace fragments to this file (also enables /debug/traces)")
	faultSpec := flag.String("fault", "", "chaos testing: seeded deterministic fault schedule, \"<seed>:point=kind[@freq][/dur][#count],...\" (see docs/OPERATIONS.md §8)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at shutdown")
	flag.Parse()

	var injector *fault.Injector
	if *faultSpec != "" {
		var perr error
		injector, perr = fault.Parse(*faultSpec)
		fail(perr)
	}

	stopProf, err := perf.StartProfiles(*cpuprofile, *memprofile)
	fail(err)
	stopProfiles = stopProf
	defer func() { _ = stopProfiles() }()

	if *replicas == "" {
		fail(fmt.Errorf("-replicas is required (comma-separated llm4vvd addresses)"))
	}
	if *id == "" {
		*id = *addr
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("router_id", *id)
	var tracer *trace.Tracer
	if *traceFile != "" {
		tf, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		fail(err)
		defer tf.Close()
		tracer = trace.New(trace.WithWriter(tf), trace.WithProcess("llm4vv-router/"+*id))
	}
	var dialOpts []remote.Option
	if injector != nil {
		// Replica-bound requests traverse the injector's "remote.send"
		// point (per-replica sub-points keyed by host), so resets, 5xx,
		// latency, and torn bodies can be scheduled on the router→replica
		// hop deterministically.
		dialOpts = append(dialOpts, remote.WithHTTPClient(&http.Client{Transport: fault.Transport(injector, "remote.send", nil)}))
		logger.Info("llm4vv-router: chaos fault schedule armed", "seed", injector.Seed(), "spec", *faultSpec)
	}
	router, err := fleet.DialConfig(*replicas, fleet.Config{
		Vnodes:         *vnodes,
		LoadFactor:     *loadFactor,
		HealthInterval: *healthInterval,
		Logger:         logger,
		Fault:          injector,
	}, dialOpts...)
	fail(err)
	frontend := fleet.NewFrontend(fleet.FrontendConfig{
		Router:      router,
		ID:          *id,
		QueueLimit:  *queue,
		BulkLimit:   *bulkQueue,
		ClientQuota: *clientQuota,
		RetryAfter:  *retryAfter,
		Tracer:      tracer,
		Logger:      logger,
		Fault:       injector,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: frontend.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("llm4vv-router: routing", "replicas", *replicas, "addr", *addr, "tracing", *traceFile != "")

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}
	logger.Info("llm4vv-router: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("llm4vv-router: shutdown", "err", err)
	}
	router.Close()
	rs, fs := router.Stats(), frontend.Stats()
	logger.Info("llm4vv-router: routed",
		"prompts", rs.RoutedPrompts, "requests", rs.Requests, "batch_requests", rs.BatchRequests,
		"failovers", rs.Failovers, "spills", rs.Spills,
		"shed_interactive", fs.ShedInteractive, "shed_bulk", fs.ShedBulk, "quota_rejected", fs.QuotaRejected)
}

// stopProfiles finalises -cpuprofile/-memprofile; fail routes through
// it so a router dying on an error still writes its profiles.
var stopProfiles = func() error { return nil }

func fail(err error) {
	if err != nil {
		_ = stopProfiles()
		fmt.Fprintln(os.Stderr, "llm4vv-router:", err)
		os.Exit(1)
	}
}
