// Command llm4vvd is the judging daemon: it fronts one registered LLM
// backend over HTTP so any number of worker processes — cmd/llm4vv,
// cmd/judgebench, or third-party clients — judge through one shared
// endpoint instead of each embedding its own. Workers select it with
// -serve-addr (or -backend remote:<addr>), and every experiment runs
// unmodified against it.
//
// Usage:
//
//	llm4vvd [-addr HOST:PORT] [-backend NAME] [-seed N] \
//	        [-batch-max N] [-batch-delay D] [-queue N] \
//	        [-replica-id NAME] [-store PATH] [-cache] \
//	        [-trace F] [-fault SPEC] [-cpuprofile F] [-memprofile F]
//
// -replica-id names the instance in /healthz, /v1/backends, and the
// /metrics replica label (default: the listen address) so routers and
// dashboards can tell fleet members apart; /metrics serves the serving
// counters and per-stage latency summaries in Prometheus text format.
// A fleet of llm4vvd replicas scales horizontally behind
// cmd/llm4vv-router, which consistent-hash routes prompts so each
// replica's dedup store and cache stay authoritative for its share of
// the key space.
//
// Concurrent single-prompt requests are coalesced by a dynamic
// micro-batcher (-batch-max, -batch-delay) into one CompleteBatch
// call per shard when the backend supports batching; -queue bounds
// admission, with overload answered by 429 + Retry-After. -store
// mounts a persistent run store so identical (backend, seed, prompt)
// requests — across workers and daemon restarts — dedup to one
// completion; -cache adds an in-memory memo with singleflight dedup
// of concurrent identical prompts. SIGINT shuts down gracefully:
// in-flight requests finish, then the store is closed.
//
// The daemon can serve a whole voting panel: -backend
// "ensemble:a+b+c[:strategy]" composes the named backends into one
// ensemble endpoint whose responses carry the per-member votes, so
// workers running `judgebench -panel -serve-addr` score agreement
// metrics off the daemon exactly as they would in-process.
// /v1/backends reports the panel members and strategy.
//
// -trace appends one JSONL trace fragment per completed request trace
// to the given file: requests arriving with X-LLM4VV-Trace join the
// caller's distributed trace, and the daemon's gather/batch/resolve
// spans land in the fragment tagged with this replica's process name.
// The most recent fragments are also served as JSON on /debug/traces,
// and the slowest span per stage is exported as the
// llm4vv_trace_slow_exemplar metric. Status lines are structured logs
// (log/slog) carrying replica_id.
//
// -fault arms deterministic chaos injection from a seeded schedule —
// "<seed>:point=kind[@freq][/dur][#count],..." — at the daemon's named
// injection points: "daemon.complete" (malformed completions, errors,
// latency at the fronted endpoint), "daemon.handler" (slow responses,
// hangs, 500s at the completion handlers), and "store.write" /
// "store.sync" / "store.rename" (failed file I/O in the run store).
// Identical seeds and schedules reproduce identical fault sequences;
// injected counts surface in the llm4vv_resilience_* metric families.
// See docs/OPERATIONS.md §8 for the chaos runbook.
//
// -cpuprofile/-memprofile write pprof profiles covering the daemon's
// lifetime (CPU from start to shutdown; heap at exit after a GC), the
// field instrument for serving hot paths: start the daemon profiled,
// drive the real workload, SIGINT, inspect.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	llm4vv "repro"
	"repro/internal/fault"
	"repro/internal/judge"
	"repro/internal/perf"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	backend := flag.String("backend", llm4vv.DefaultBackend, "registered LLM backend to serve")
	seed := flag.Uint64("seed", llm4vv.DefaultModelSeed, "model sampling seed")
	batchMax := flag.Int("batch-max", server.DefaultBatchMaxSize, "micro-batcher: max coalesced prompts per endpoint call")
	batchDelay := flag.Duration("batch-delay", server.DefaultBatchMaxDelay, "micro-batcher: max wait for stragglers")
	queue := flag.Int("queue", server.DefaultQueueLimit, "admission control: max prompts queued or in flight")
	replicaID := flag.String("replica-id", "", "stable instance name in /healthz, /v1/backends, and /metrics labels (default: the listen address)")
	storePath := flag.String("store", "", "dedup identical requests through this JSONL run store")
	cache := flag.Bool("cache", false, "memoise completions in memory with singleflight dedup")
	traceFile := flag.String("trace", "", "append JSONL trace fragments to this file (also enables /debug/traces)")
	faultSpec := flag.String("fault", "", "chaos testing: seeded deterministic fault schedule, \"<seed>:point=kind[@freq][/dur][#count],...\" (see docs/OPERATIONS.md §8)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at shutdown")
	flag.Parse()

	var injector *fault.Injector
	if *faultSpec != "" {
		var err error
		injector, err = fault.Parse(*faultSpec)
		fail(err)
	}

	stopProf, err := perf.StartProfiles(*cpuprofile, *memprofile)
	fail(err)
	stopProfiles = stopProf
	defer func() { _ = stopProfiles() }()

	llm, err := llm4vv.NewBackend(*backend, *seed)
	fail(err)
	if *cache {
		llm = judge.Cached(llm)
	}

	if *replicaID == "" {
		*replicaID = *addr
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("replica_id", *replicaID)
	var tracer *trace.Tracer
	if *traceFile != "" {
		tf, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		fail(err)
		defer tf.Close()
		tracer = trace.New(trace.WithWriter(tf), trace.WithProcess("llm4vvd/"+*replicaID))
	}
	cfg := server.Config{
		LLM:           llm,
		Backend:       *backend,
		Seed:          *seed,
		ReplicaID:     *replicaID,
		Registered:    llm4vv.Backends(),
		BatchMaxSize:  *batchMax,
		BatchMaxDelay: *batchDelay,
		QueueLimit:    *queue,
		Tracer:        tracer,
		Fault:         injector,
	}
	var st *store.Store
	if *storePath != "" {
		st, err = store.OpenWith(*storePath, store.Options{FaultHook: fault.Hook(injector, "store")})
		fail(err)
		cfg.Store = st
	}
	if injector != nil {
		logger.Info("llm4vvd: chaos fault schedule armed", "seed", injector.Seed(), "spec", *faultSpec)
	}

	srv := server.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("llm4vvd: serving", "backend", *backend, "seed", *seed, "addr", *addr, "tracing", *traceFile != "")

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}
	logger.Info("llm4vvd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("llm4vvd: shutdown", "err", err)
	}
	srv.Close()
	if st != nil {
		fail(st.Close())
	}
	s := srv.Stats()
	logger.Info("llm4vvd: served",
		"requests", s.Requests, "batch_requests", s.BatchRequests,
		"endpoint_calls", s.EndpointCalls, "endpoint_prompts", s.EndpointPrompts,
		"coalesced", s.Coalesced, "store_hits", s.StoreHits, "rejected", s.Rejected)
}

// stopProfiles finalises -cpuprofile/-memprofile; fail routes through
// it so a daemon dying on an error still writes its profiles.
var stopProfiles = func() error { return nil }

func fail(err error) {
	if err != nil {
		_ = stopProfiles()
		fmt.Fprintln(os.Stderr, "llm4vvd:", err)
		os.Exit(1)
	}
}
