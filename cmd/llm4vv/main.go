// Command llm4vv reproduces every table and figure of the paper's
// evaluation section by dispatching the registered experiments
// generically: running it with no flags regenerates Tables I-IX, the
// data series behind Figures 3-6, and the ablations and generation
// loop called out in DESIGN.md.
//
// Usage:
//
//	llm4vv [-seed N] [-scale K] [-backend NAME] [-serve-addr HOST:PORT] \
//	       [-workers N] [-stage-workers name=N,...] [-shard N] \
//	       [-timeout D] [-trace DIR] \
//	       [-experiment all|list|NAME] [-progress] [-store PATH [-resume]]
//
// -experiment list enumerates the registered experiments (and the
// registered backends); any registered name — including scenarios
// added by third-party packages via llm4vv.RegisterExperiment, and
// the panel experiment (`-experiment panel`), which judges the suites
// with a voting ensemble and scores inter-judge agreement — runs
// through the same generic path. -scale K divides every suite's
// per-issue counts by K for quick runs. Interrupting the process
// (SIGINT) cancels the run's context and exits promptly; with
// -store PATH every sealed verdict was appended to the run store on
// the way, and re-running with -resume picks up where the interrupted
// run stopped, re-judging zero completed files. -shard sets the
// sharded scheduler's chunk (and judge batch) size, 0 = automatic.
// -stage-workers overrides -workers for individual pipeline stages
// ("judge=16", or comma-separated "compile=2,exec=2,judge=32"; stage
// names compile, exec, judge) — the knob for sizing the judge pool to
// a remote fleet while the local tool stages stay narrow. Scheduling
// knobs never change verdicts or reports.
//
// -serve-addr routes all judging through a running llm4vvd daemon:
// the address registers as the "remote:<addr>" backend and overrides
// -backend, so many worker processes can share one judging service
// (the daemon's backend and seed govern; they are fixed at daemon
// start). A comma-separated list fails over across replicas; a
// llm4vv-router address or -backend "fleet:addr1,addr2,..." routes
// by consistent hashing over a whole fleet. -timeout D wraps the whole run in a deadline — the run is
// cancelled cleanly, exactly like SIGINT, when it expires.
//
// -trace DIR enables distributed tracing: every judged file opens its
// own trace and each completed trace appends one JSONL fragment to
// DIR/llm4vv-trace.jsonl. Render with `judgebench -trace-view`; when
// judging through daemons started with -trace, their fragments carry
// the same trace IDs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	llm4vv "repro"
	"repro/internal/trace"
)

func main() {
	seed := flag.Uint64("seed", llm4vv.DefaultModelSeed, "model sampling seed")
	scale := flag.Int("scale", 1, "divide suite sizes by this factor")
	backend := flag.String("backend", llm4vv.DefaultBackend, "registered LLM backend")
	serveAddr := flag.String("serve-addr", "", "judge through the llm4vvd daemon at this address (overrides -backend; a comma-separated list fails over across replicas)")
	timeout := flag.Duration("timeout", 0, "cancel the whole run after this duration (0 = no deadline)")
	workers := flag.Int("workers", 0, "per-stage workers (0 = GOMAXPROCS)")
	stageWorkers := flag.String("stage-workers", "", "per-stage pipeline workers, name=N comma-separated (stages: compile, exec, judge; overrides -workers)")
	shard := flag.Int("shard", 0, "scheduler shard / judge batch size (0 = automatic)")
	experiment := flag.String("experiment", "all", "all|list|<registered name>")
	progress := flag.Bool("progress", false, "stream per-file progress to stderr")
	storePath := flag.String("store", "", "append sealed verdicts to this JSONL run store")
	resume := flag.Bool("resume", false, "skip files already recorded in the run store (requires -store)")
	traceDir := flag.String("trace", "", "write JSONL trace fragments to DIR/llm4vv-trace.jsonl")
	flag.Parse()

	if *resume && *storePath == "" {
		fmt.Fprintln(os.Stderr, "llm4vv: -resume requires -store")
		os.Exit(2)
	}

	if *experiment == "list" {
		fmt.Println("registered experiments:")
		for _, e := range llm4vv.Experiments() {
			fmt.Printf("  %-10s %s\n", e.Name(), e.Description())
		}
		fmt.Println("registered backends:")
		for _, name := range llm4vv.Backends() {
			fmt.Printf("  %s\n", name)
		}
		return
	}

	if *serveAddr != "" {
		*backend = llm4vv.RegisterRemoteBackend(*serveAddr)
	}
	opts := []llm4vv.Option{
		llm4vv.WithBackend(*backend),
		llm4vv.WithSeed(*seed),
		llm4vv.WithShardSize(*shard),
	}
	if *workers > 0 {
		opts = append(opts, llm4vv.WithWorkers(*workers))
	}
	if *stageWorkers != "" {
		for _, kv := range strings.Split(*stageWorkers, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			n, err := strconv.Atoi(strings.TrimSpace(val))
			if !ok || err != nil {
				fmt.Fprintf(os.Stderr, "llm4vv: -stage-workers wants name=N[,name=N...], got %q\n", kv)
				os.Exit(2)
			}
			opts = append(opts, llm4vv.WithStageWorkers(strings.TrimSpace(name), n))
		}
	}
	if *storePath != "" {
		opts = append(opts, llm4vv.WithStore(*storePath), llm4vv.WithResume(*resume))
	}
	if *traceDir != "" {
		check(os.MkdirAll(*traceDir, 0o755))
		tf, err := os.OpenFile(filepath.Join(*traceDir, "llm4vv-trace.jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		check(err)
		defer tf.Close()
		opts = append(opts, llm4vv.WithTracer(trace.New(trace.WithWriter(tf), trace.WithProcess("llm4vv"))))
	}
	if *progress {
		opts = append(opts, llm4vv.WithProgress(func(p llm4vv.Progress) {
			fmt.Fprintf(os.Stderr, "\r%-28s %d/%d", p.Phase, p.Done, p.Total)
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	}
	runner, err := llm4vv.NewRunner(opts...)
	check(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	params := llm4vv.ExperimentParams{Scale: *scale}
	names := []string{*experiment}
	if *experiment == "all" {
		names = names[:0]
		for _, e := range llm4vv.Experiments() {
			// "all" reproduces the paper's experiments once on the
			// selected backend; the cross-backend compare sweep would
			// re-judge the Part One suites per registered backend, so
			// it runs only when asked for by name.
			if e.Name() == "compare" {
				continue
			}
			names = append(names, e.Name())
		}
	}

	start := time.Now()
	for _, name := range names {
		res, err := llm4vv.RunExperiment(ctx, runner, name, params)
		check(err)
		fmt.Println(res.Report())
	}
	check(runner.Close())
	fmt.Printf("\ntotal wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "llm4vv:", err)
		os.Exit(1)
	}
}
