// Command llm4vv reproduces every table and figure of the paper's
// evaluation section. Running it with no flags regenerates Tables I-IX
// and the data series behind Figures 3-6, plus the three ablations
// called out in DESIGN.md.
//
// Usage:
//
//	llm4vv [-seed N] [-scale K] [-experiment all|part1|part2|ablations|genloop]
//
// -scale K divides every suite's per-issue counts by K for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	llm4vv "repro"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/spec"
)

func main() {
	seed := flag.Uint64("seed", llm4vv.DefaultModelSeed, "model sampling seed")
	scale := flag.Int("scale", 1, "divide suite sizes by this factor")
	experiment := flag.String("experiment", "all", "all|part1|part2|ablations|genloop")
	flag.Parse()

	start := time.Now()
	switch *experiment {
	case "all":
		part1(*seed, *scale)
		part2(*seed, *scale)
		ablations(*seed, *scale)
		generation(*seed)
	case "part1":
		part1(*seed, *scale)
	case "part2":
		part2(*seed, *scale)
	case "ablations":
		ablations(*seed, *scale)
	case "genloop":
		generation(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	fmt.Printf("\ntotal wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "llm4vv:", err)
		os.Exit(1)
	}
}

func part1(seed uint64, scale int) {
	fmt.Println("================ PART ONE: direct LLM-as-a-judge (negative probing) ================")
	summaries := map[string][]metrics.Summary{}
	for _, d := range []spec.Dialect{spec.OpenACC, spec.OpenMP} {
		s, err := llm4vv.RunDirectProbing(llm4vv.PartOneSpec(d).Scaled(scale), seed)
		check(err)
		summaries[d.String()] = []metrics.Summary{s}
		title := "Table I: LLMJ Negative Probing Results for OpenACC"
		if d == spec.OpenMP {
			title = "Table II: LLMJ Negative Probing Results for OpenMP"
		}
		fmt.Println(report.PerIssueTable(title, s))
	}
	fmt.Println(report.OverallTable("Table III: LLMJ Overall Negative Probing Results",
		[]string{""}, summaries))
}

func part2(seed uint64, scale int) {
	fmt.Println("================ PART TWO: agent-based judges and validation pipeline ================")
	pipeCols := map[string][]metrics.Summary{}
	judgeCols := map[string][]metrics.Summary{}
	results := map[spec.Dialect]llm4vv.PartTwoResult{}
	for _, d := range []spec.Dialect{spec.OpenACC, spec.OpenMP} {
		r, err := llm4vv.RunPartTwo(llm4vv.PartTwoSpec(d).Scaled(scale), seed)
		check(err)
		results[d] = r
		pipeCols[d.String()] = []metrics.Summary{r.Pipeline1, r.Pipeline2}
		judgeCols[d.String()] = []metrics.Summary{r.LLMJ1, r.LLMJ2}
	}

	fmt.Println(report.PairedPerIssueTable(
		"Table IV: Validation Pipeline Results for OpenACC",
		"Pipeline 1", "Pipeline 2",
		results[spec.OpenACC].Pipeline1, results[spec.OpenACC].Pipeline2))
	fmt.Println(report.PairedPerIssueTable(
		"Table V: Validation Pipeline Results for OpenMP",
		"Pipeline 1", "Pipeline 2",
		results[spec.OpenMP].Pipeline1, results[spec.OpenMP].Pipeline2))
	fmt.Println(report.OverallTable("Table VI: Overall Validation Pipeline Results",
		[]string{"Pipeline 1", "Pipeline 2"}, pipeCols))

	fmt.Println(report.PairedPerIssueTable(
		"Table VII: Agent-Based LLMJ Results for OpenACC",
		"LLMJ 1", "LLMJ 2",
		results[spec.OpenACC].LLMJ1, results[spec.OpenACC].LLMJ2))
	fmt.Println(report.PairedPerIssueTable(
		"Table VIII: Agent-Based LLMJ Results for OpenMP",
		"LLMJ 1", "LLMJ 2",
		results[spec.OpenMP].LLMJ1, results[spec.OpenMP].LLMJ2))
	fmt.Println(report.OverallTable("Table IX: Overall Agent-Based LLMJ Results",
		[]string{"LLMJ 1", "LLMJ 2"}, judgeCols))

	fmt.Println(report.RadarSeries("Figure 3: Validation Pipeline Results for OpenACC (radar series)",
		[]string{"Pipeline 1", "Pipeline 2"},
		[]metrics.Summary{results[spec.OpenACC].Pipeline1, results[spec.OpenACC].Pipeline2}))
	fmt.Println(report.RadarSeries("Figure 4: Validation Pipeline Results for OpenMP (radar series)",
		[]string{"Pipeline 1", "Pipeline 2"},
		[]metrics.Summary{results[spec.OpenMP].Pipeline1, results[spec.OpenMP].Pipeline2}))
	fmt.Println(report.RadarSeries("Figure 5: LLMJ Results for OpenACC (radar series)",
		[]string{"Non-agent LLMJ", "LLMJ 1", "LLMJ 2"},
		[]metrics.Summary{results[spec.OpenACC].Direct, results[spec.OpenACC].LLMJ1, results[spec.OpenACC].LLMJ2}))
	fmt.Println(report.RadarSeries("Figure 6: LLMJ Results for OpenMP (radar series)",
		[]string{"Non-agent LLMJ", "LLMJ 1", "LLMJ 2"},
		[]metrics.Summary{results[spec.OpenMP].Direct, results[spec.OpenMP].LLMJ1, results[spec.OpenMP].LLMJ2}))
}

func generation(seed uint64) {
	fmt.Println("================ EXTENSION E1: automated test generation (paper §VI) ================")
	for _, d := range []spec.Dialect{spec.OpenACC, spec.OpenMP} {
		r := llm4vv.RunGenerationLoop(d, 2, seed)
		fmt.Printf("%v: %d candidates, %d accepted\n", d, len(r.Candidates), len(r.Accepted))
		fmt.Printf("  raw sound rate      %5.1f%%\n", 100*r.RawSoundRate())
		fmt.Printf("  accepted precision  %5.1f%%\n", 100*r.AcceptancePrecision())
		fmt.Printf("  defect catch rate   %5.1f%%\n", 100*r.DefectCatchRate())
		fmt.Printf("  sound-test yield    %5.1f%%\n\n", 100*r.SoundYield())
	}
}

func ablations(seed uint64, scale int) {
	fmt.Println("================ ABLATIONS (DESIGN.md A1-A3) ================")
	for _, d := range []spec.Dialect{spec.OpenACC, spec.OpenMP} {
		spec2 := llm4vv.PartTwoSpec(d).Scaled(scale)

		ai, err := llm4vv.RunAblationAgentInfo(spec2, seed)
		check(err)
		fmt.Printf("A2 (%v): tool information in the prompt\n", d)
		fmt.Printf("  without tools: acc=%.2f%% bias=%+.3f\n", 100*ai.WithoutTools.Accuracy(), ai.WithoutTools.Bias())
		fmt.Printf("  with tools:    acc=%.2f%% bias=%+.3f\n\n", 100*ai.WithTools.Accuracy(), ai.WithTools.Bias())

		st, err := llm4vv.RunAblationStages(spec2, seed)
		check(err)
		fmt.Printf("A3 (%v): stage contribution\n", d)
		fmt.Printf("  compile only:        acc=%.2f%%\n", 100*st.CompileOnly.Accuracy())
		fmt.Printf("  compile + execute:   acc=%.2f%%\n", 100*st.CompileAndRun.Accuracy())
		fmt.Printf("  full pipeline:       acc=%.2f%%\n\n", 100*st.FullPipeline.Accuracy())

		tp, err := llm4vv.RunPipelineThroughput(spec2, seed, 8)
		check(err)
		fmt.Printf("A1 (%v): short-circuiting\n", d)
		fmt.Printf("  short-circuit: compiles=%d executions=%d judge calls=%d\n",
			tp.ShortCircuit.Compiles, tp.ShortCircuit.Executions, tp.ShortCircuit.JudgeCalls)
		fmt.Printf("  record-all:    compiles=%d executions=%d judge calls=%d\n\n",
			tp.RecordAll.Compiles, tp.RecordAll.Executions, tp.RecordAll.JudgeCalls)
	}
}
