// Command judgebench runs a single judge or pipeline configuration
// against a probed suite and prints its per-issue scorecard — the tool
// for exploring configurations beyond the paper's fixed experiments.
//
// Usage:
//
//	judgebench -dialect acc|omp -mode direct|agent|indirect|pipeline1|pipeline2 \
//	           [-scale K] [-seed N] [-show N]
//
// -show N prints N sample prompt/response transcripts.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	llm4vv "repro"
	"repro/internal/agent"
	"repro/internal/judge"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/spec"
)

func main() {
	dialectFlag := flag.String("dialect", "acc", "acc or omp")
	mode := flag.String("mode", "pipeline1", "direct|agent|indirect|pipeline1|pipeline2")
	scale := flag.Int("scale", 4, "divide suite sizes by this factor")
	seed := flag.Uint64("seed", llm4vv.DefaultModelSeed, "model seed")
	show := flag.Int("show", 0, "print this many sample transcripts")
	flag.Parse()

	var d spec.Dialect
	switch *dialectFlag {
	case "acc":
		d = spec.OpenACC
	case "omp":
		d = spec.OpenMP
	default:
		fmt.Fprintln(os.Stderr, "judgebench: -dialect must be acc or omp")
		os.Exit(2)
	}
	suiteSpec := llm4vv.PartTwoSpec(d).Scaled(*scale)
	suite, err := llm4vv.BuildSuite(suiteSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "judgebench:", err)
		os.Exit(1)
	}

	style := judge.AgentDirect
	pipelineVerdict := false
	switch *mode {
	case "direct":
		style = judge.Direct
	case "agent":
		style = judge.AgentDirect
	case "indirect":
		style = judge.AgentIndirect
	case "pipeline1":
		style, pipelineVerdict = judge.AgentDirect, true
	case "pipeline2":
		style, pipelineVerdict = judge.AgentIndirect, true
	default:
		fmt.Fprintln(os.Stderr, "judgebench: unknown -mode", *mode)
		os.Exit(2)
	}

	inputs := make([]pipeline.Input, len(suite))
	for i, pf := range suite {
		inputs[i] = pipeline.Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
	}
	workers := runtime.GOMAXPROCS(0)
	var jd *judge.Judge
	if style == judge.Direct && !pipelineVerdict {
		jd = &judge.Judge{LLM: llm4vv.NewModel(*seed), Style: judge.Direct, Dialect: d}
	} else {
		jd = &judge.Judge{LLM: llm4vv.NewModel(*seed), Style: style, Dialect: d}
	}
	cfg := pipeline.Config{
		Tools:          agent.NewTools(d),
		Judge:          jd,
		CompileWorkers: workers,
		ExecWorkers:    workers,
		JudgeWorkers:   workers,
		RecordAll:      true,
		KeepResponses:  *show > 0,
	}
	if style == judge.Direct {
		// The direct judge receives no tool info; evaluate outside the
		// pipeline for fidelity to Part One.
		outcomes := make([]metrics.Outcome, len(suite))
		for i, pf := range suite {
			ev := jd.Evaluate(pf.Source, nil)
			outcomes[i] = metrics.Outcome{Issue: pf.Issue, JudgedValid: ev.Verdict == judge.Valid}
			if i < *show {
				fmt.Printf("--- %s (issue %d) ---\n%s\n", pf.Name, pf.Issue, ev.Response)
			}
		}
		fmt.Println(report.PerIssueTable(fmt.Sprintf("Direct judge on %v (scale 1/%d)", d, *scale),
			metrics.Score(d, outcomes)))
		return
	}

	results, stats := pipeline.Run(cfg, inputs)
	outcomes := make([]metrics.Outcome, len(results))
	shown := 0
	for i, r := range results {
		v := r.Verdict == judge.Valid
		if pipelineVerdict {
			v = r.Valid
		}
		outcomes[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: v}
		if shown < *show && r.Evaluation != nil {
			fmt.Printf("--- %s (issue %d, pipeline valid=%v) ---\n%s\n",
				r.Name, suite[i].Issue, r.Valid, r.Evaluation.Response)
			shown++
		}
	}
	title := fmt.Sprintf("%s on %v (scale 1/%d)", *mode, d, *scale)
	fmt.Println(report.PerIssueTable(title, metrics.Score(d, outcomes)))
	fmt.Printf("stage executions: compiles=%d runs=%d judge-calls=%d\n",
		stats.Compiles, stats.Executions, stats.JudgeCalls)
}
