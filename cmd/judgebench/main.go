// Command judgebench runs a single judge or pipeline configuration
// against a probed suite and prints its per-issue scorecard — the tool
// for exploring configurations beyond the paper's fixed experiments.
//
// Usage:
//
//	judgebench -dialect acc|omp -mode direct|agent|indirect|pipeline1|pipeline2 \
//	           [-scale K] [-seed N] [-backend NAME] [-show N] [-record-all=false]
//	judgebench -experiment NAME [-scale K] [-seed N] [-backend NAME] [-timeout D]
//	judgebench -compare [-scale K] [-seed N] [-store PATH [-resume]]
//	judgebench -panel [-panel-members a+b+c[:strategy]] [...]
//	judgebench -serve-addr HOST:PORT [...]
//	judgebench -store PATH -compact
//	judgebench -store PATH -store-stats
//	judgebench -trace-view FILE
//	judgebench -list
//	judgebench ... [-trace DIR] [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -show N prints N sample prompt/response transcripts. -experiment
// dispatches any registered experiment through the same generic path
// cmd/llm4vv uses; -list enumerates registered experiments and
// backends.
//
// -compare sweeps every registered backend over the same suites and
// renders a cross-backend metrics matrix (accuracy and bias per
// dialect). Combined with -store PATH, any run appends every sealed
// verdict to a persistent JSONL run store, and with -resume it skips
// every (backend, file) pair a previous run already judged — so an
// interrupted sweep restarts where it stopped, and a sweep re-run
// after registering one more backend judges only the new backend.
// -shard sets the scheduler's shard (and judge batch) size; 0 picks
// one automatically. -stage-workers sizes individual pipeline stages
// ("judge=16" or "compile=2,exec=2,judge=32") where the uniform
// per-stage default is too coarse — a remote judge fleet saturates at
// a different width than the local compile simulator. Stage names are
// compile, exec, judge; scheduling knobs never change verdicts.
// -show transcripts require re-judging, so -store
// and -resume are ignored when -show is set.
//
// -panel runs the panel experiment: the suites judged by a voting
// ensemble of backends, scored for accuracy and for inter-judge
// agreement (Fleiss' kappa, pairwise agreement, per-member bias
// against the consensus). -panel-members chooses the seats —
// "a+b+c[:strategy]" over registered backend names, strategies
// majority (default), unanimous, weighted — and registers
// "ensemble:<spec>" as a concrete backend, so it also joins any
// -compare sweep; without it the panel seats three copies of
// -backend, each under its own derived member seed. With -serve-addr
// the daemon must itself serve an ensemble backend (llm4vvd -backend
// ensemble:...); judgebench verifies that before judging starts.
//
// -serve-addr routes judging through a running llm4vvd daemon: the
// address registers as the "remote:<addr>" backend and overrides
// -backend (with -compare, the daemon joins the sweep alongside the
// in-process backends). A comma-separated address list enrols a
// replica set the client fails over across; for consistent-hash
// routing over a fleet, point -serve-addr at a running llm4vv-router
// or use -backend "fleet:addr1,addr2,...". -timeout D cancels the run when the deadline
// passes, exactly like SIGINT. -store PATH -compact rewrites the run
// store back to a single canonical file, dropping superseded duplicate
// and corrupt lines and folding away sealed segments — maintenance for
// stores grown across many resumed runs. Compact offline: the rewrite
// renames over the file, so another process holding the same store (a
// running llm4vvd) would keep appending to the orphaned inode and lose
// those records. -store PATH -store-stats prints the store's segment
// layout (active size, sealed segments, index entries, dropped lines)
// without modifying anything — see docs/OPERATIONS.md for how to read
// it.
//
// -trace DIR enables distributed tracing: every judged file opens its
// own trace, stage/cache/batch/remote spans land under it, and each
// completed trace appends one JSONL fragment to
// DIR/judgebench-trace.jsonl (created with the directory as needed).
// Judging through a daemon or router started with their own -trace
// flags, the remote processes' fragments share the same trace IDs —
// stitch them by concatenating the files. -trace-view FILE renders a
// JSONL trace file (any process's) as a terminal waterfall: one block
// per trace, spans indented under their parents with proportional
// duration bars.
//
// -cpuprofile/-memprofile write pprof profiles of the run (the heap
// profile is taken at exit, after a GC) so hot paths can be profiled
// in the field against real workloads; profiles are also written when
// the run ends in an error or a -timeout expiry.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	llm4vv "repro"
	"repro/internal/agent"
	"repro/internal/judge"
	"repro/internal/metrics"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/remote"
	"repro/internal/report"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	dialectFlag := flag.String("dialect", "acc", "acc or omp")
	mode := flag.String("mode", "pipeline1", "direct|agent|indirect|pipeline1|pipeline2")
	scale := flag.Int("scale", 4, "divide suite sizes by this factor")
	seed := flag.Uint64("seed", llm4vv.DefaultModelSeed, "model seed")
	backend := flag.String("backend", llm4vv.DefaultBackend, "registered LLM backend")
	serveAddr := flag.String("serve-addr", "", "judge through the llm4vvd daemon at this address (overrides -backend; a comma-separated list fails over across replicas)")
	timeout := flag.Duration("timeout", 0, "cancel the whole run after this duration (0 = no deadline)")
	show := flag.Int("show", 0, "print this many sample transcripts")
	recordAll := flag.Bool("record-all", true, "run every stage for every file (false = short-circuit)")
	experiment := flag.String("experiment", "", "dispatch a registered experiment instead of a mode")
	compare := flag.Bool("compare", false, "sweep every registered backend and print a cross-backend metrics matrix")
	panel := flag.Bool("panel", false, "run the panel experiment: ensemble judging with inter-judge agreement metrics")
	panelMembers := flag.String("panel-members", "", "ensemble member spec a+b+c[:strategy]; registers ensemble:<spec> as a backend")
	storePath := flag.String("store", "", "append sealed verdicts to this JSONL run store")
	resume := flag.Bool("resume", false, "skip files already recorded in the run store (requires -store)")
	compact := flag.Bool("compact", false, "compact the run store (drop superseded duplicates), then exit (requires -store)")
	storeStats := flag.Bool("store-stats", false, "print the run store's segment layout and exit (requires -store)")
	shard := flag.Int("shard", 0, "scheduler shard / judge batch size (0 = automatic)")
	stageWorkers := flag.String("stage-workers", "", "per-stage pipeline workers, name=N comma-separated (stages: compile, exec, judge)")
	traceDir := flag.String("trace", "", "write JSONL trace fragments to DIR/judgebench-trace.jsonl")
	traceView := flag.String("trace-view", "", "render a JSONL trace file as a terminal waterfall, then exit")
	list := flag.Bool("list", false, "list registered experiments and backends, then exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	stopProf, err := perf.StartProfiles(*cpuprofile, *memprofile)
	fail(err)
	stopProfiles = stopProf
	defer func() { _ = stopProfiles() }()

	if *list {
		fmt.Println("registered experiments:")
		for _, e := range llm4vv.Experiments() {
			fmt.Printf("  %-10s %s\n", e.Name(), e.Description())
		}
		fmt.Println("registered backends:")
		for _, name := range llm4vv.Backends() {
			fmt.Printf("  %s\n", name)
		}
		return
	}
	if *traceView != "" {
		fail(viewTraces(os.Stdout, *traceView))
		return
	}
	if *resume && *storePath == "" {
		fmt.Fprintln(os.Stderr, "judgebench: -resume requires -store")
		os.Exit(2)
	}
	if *compact {
		if *storePath == "" {
			fmt.Fprintln(os.Stderr, "judgebench: -compact requires -store")
			os.Exit(2)
		}
		// Open would silently create a missing path; maintenance on a
		// typo must fail, not report an empty store compacted.
		if _, err := os.Stat(*storePath); err != nil {
			fail(fmt.Errorf("-compact: %w", err))
		}
		st, err := store.Open(*storePath)
		fail(err)
		removed, err := st.Compact()
		fail(err)
		fail(st.Close())
		fmt.Printf("compacted %s: %d records kept, %d lines removed\n", *storePath, st.Len(), removed)
		return
	}
	if *storeStats {
		if *storePath == "" {
			fmt.Fprintln(os.Stderr, "judgebench: -store-stats requires -store")
			os.Exit(2)
		}
		if _, err := os.Stat(*storePath); err != nil {
			fail(fmt.Errorf("-store-stats: %w", err))
		}
		st, err := store.Open(*storePath)
		fail(err)
		stats := st.Stats()
		fail(st.Close())
		fmt.Printf("%s: %d keys, %d dropped lines\n", stats.Path, stats.Keys, stats.Dropped)
		fmt.Printf("  active: %d live records, %d lines, %d bytes\n", stats.ActiveRecords, stats.ActiveLines, stats.ActiveBytes)
		fmt.Printf("  sealed: %d segments, %d records\n", stats.SegmentCount(), stats.SegmentRecords())
		for _, sg := range stats.Segments {
			fmt.Printf("    %s: %d records, %d bytes, %d index entries\n", sg.Path, sg.Records, sg.Bytes, sg.IndexEntries)
		}
		if stats.MergeErr != "" {
			fmt.Printf("  last merge error: %s\n", stats.MergeErr)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *serveAddr != "" {
		*backend = llm4vv.RegisterRemoteBackend(*serveAddr)
	}
	if *panelMembers != "" {
		// Concrete registration admits the panel into Backends() (and
		// so into -compare sweeps); it also becomes the judging
		// backend unless a daemon was selected.
		name, err := llm4vv.RegisterEnsembleBackend(*panelMembers)
		fail(err)
		if *serveAddr == "" {
			*backend = name
		}
	}
	if *panel {
		*experiment = "panel"
		if *serveAddr != "" {
			// The panel experiment needs responses that carry member
			// votes; a daemon fronting a single judge would fail only
			// after judging starts, so check what it serves up front —
			// and when -panel-members was given too, that the daemon
			// serves that exact panel rather than silently scoring a
			// different one.
			info, err := remote.New(*serveAddr).Info(ctx)
			fail(err)
			if !strings.HasPrefix(info.Serving, "ensemble:") {
				fail(fmt.Errorf("daemon at %s serves backend %q, not an ensemble; start llm4vvd with -backend ensemble:a+b+c", *serveAddr, info.Serving))
			}
			if *panelMembers != "" && info.Serving != "ensemble:"+*panelMembers {
				fail(fmt.Errorf("daemon at %s serves %q, not the requested ensemble:%s; restart llm4vvd with -backend 'ensemble:%s' or drop -panel-members", *serveAddr, info.Serving, *panelMembers, *panelMembers))
			}
		}
	}
	if *compare {
		*experiment = "compare"
	}

	var d spec.Dialect
	switch *dialectFlag {
	case "acc":
		d = spec.OpenACC
	case "omp":
		d = spec.OpenMP
	default:
		fmt.Fprintln(os.Stderr, "judgebench: -dialect must be acc or omp")
		os.Exit(2)
	}

	style := judge.AgentDirect
	pipelineVerdict := false
	if *experiment == "" {
		switch *mode {
		case "direct":
			style = judge.Direct
		case "agent":
			style = judge.AgentDirect
		case "indirect":
			style = judge.AgentIndirect
		case "pipeline1":
			style, pipelineVerdict = judge.AgentDirect, true
		case "pipeline2":
			style, pipelineVerdict = judge.AgentIndirect, true
		default:
			fmt.Fprintln(os.Stderr, "judgebench: unknown -mode", *mode)
			os.Exit(2)
		}
	}

	// Judge-only scorecards (agent/indirect) need every file judged;
	// short-circuiting would score dropped files as judge-invalid and
	// measure the pipeline instead of the judge.
	runRecordAll := *recordAll
	if *experiment == "" && !pipelineVerdict && style != judge.Direct && !runRecordAll {
		fmt.Fprintln(os.Stderr, "judgebench: -mode", *mode, "scores the judge alone; forcing -record-all=true")
		runRecordAll = true
	}

	if *experiment == "" && *show > 0 {
		// Transcripts need kept responses, which the Runner's stored
		// path does not retain; judge through the toolchain directly.
		showTranscripts(ctx, d, llm4vv.PartTwoSpec(d).Scaled(*scale), *mode, style, pipelineVerdict, *backend, *seed, *scale, *show, runRecordAll)
		return
	}

	opts := []llm4vv.Option{
		llm4vv.WithBackend(*backend),
		llm4vv.WithSeed(*seed),
		llm4vv.WithRecordAll(runRecordAll),
		llm4vv.WithShardSize(*shard),
	}
	stageOpts, err := parseStageWorkers(*stageWorkers)
	fail(err)
	opts = append(opts, stageOpts...)
	if *storePath != "" {
		opts = append(opts, llm4vv.WithStore(*storePath), llm4vv.WithResume(*resume))
	}
	if *traceDir != "" {
		fail(os.MkdirAll(*traceDir, 0o755))
		tf, err := os.OpenFile(filepath.Join(*traceDir, "judgebench-trace.jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		fail(err)
		defer tf.Close()
		opts = append(opts, llm4vv.WithTracer(trace.New(trace.WithWriter(tf), trace.WithProcess("judgebench"))))
	}
	runner, err := llm4vv.NewRunner(opts...)
	fail(err)

	if *experiment != "" {
		res, err := llm4vv.RunExperiment(ctx, runner, *experiment, llm4vv.ExperimentParams{Scale: *scale})
		fail(err)
		fmt.Println(res.Report())
		fail(runner.Close())
		return
	}

	suiteSpec := llm4vv.PartTwoSpec(d).Scaled(*scale)
	suite, err := llm4vv.BuildSuite(suiteSpec)
	fail(err)

	if style == judge.Direct {
		// The direct judge receives no tool info; evaluate outside the
		// pipeline for fidelity to Part One.
		sum, err := runner.DirectProbing(ctx, suiteSpec)
		fail(err)
		fmt.Println(report.PerIssueTable(fmt.Sprintf("Direct judge on %v (scale 1/%d)", d, *scale), sum))
		fail(runner.Close())
		return
	}

	results, stats, err := runner.ValidateSuite(ctx, suiteSpec, style)
	fail(err)
	outcomes := make([]metrics.Outcome, len(results))
	for i, r := range results {
		v := r.Verdict == judge.Valid
		if pipelineVerdict {
			v = r.Valid
		}
		outcomes[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: v}
	}
	title := fmt.Sprintf("%s on %v (scale 1/%d)", *mode, d, *scale)
	fmt.Println(report.PerIssueTable(title, metrics.Score(d, outcomes)))
	fmt.Printf("stage executions: compiles=%d runs=%d judge-calls=%d judge-batches=%d\n",
		stats.Compiles, stats.Executions, stats.JudgeCalls, stats.JudgeBatches)
	fail(runner.Close())
}

// showTranscripts reruns the configuration with responses kept,
// printing the first N transcripts alongside the scorecard.
// parseStageWorkers turns a -stage-workers value ("judge=16" or
// "compile=2,exec=2,judge=32") into WithStageWorkers options; stage
// names are validated by NewRunner.
func parseStageWorkers(spec string) ([]llm4vv.Option, error) {
	if spec == "" {
		return nil, nil
	}
	var opts []llm4vv.Option
	for _, kv := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if !ok || err != nil {
			return nil, fmt.Errorf("-stage-workers wants name=N[,name=N...], got %q", kv)
		}
		opts = append(opts, llm4vv.WithStageWorkers(strings.TrimSpace(name), n))
	}
	return opts, nil
}

func showTranscripts(ctx context.Context, d spec.Dialect, suiteSpec llm4vv.SuiteSpec, mode string, style judge.Style, pipelineVerdict bool, backend string, seed uint64, scale, show int, recordAll bool) {
	suite, err := llm4vv.BuildSuite(suiteSpec)
	fail(err)
	llm, err := llm4vv.NewBackend(backend, seed)
	fail(err)
	jd := &judge.Judge{LLM: llm, Style: style, Dialect: d}
	if style == judge.Direct {
		outcomes := make([]metrics.Outcome, len(suite))
		for i, pf := range suite {
			ev, err := jd.Evaluate(ctx, pf.Source, nil)
			fail(err)
			outcomes[i] = metrics.Outcome{Issue: pf.Issue, JudgedValid: ev.Verdict == judge.Valid}
			if i < show {
				fmt.Printf("--- %s (issue %d) ---\n%s\n", pf.Name, pf.Issue, ev.Response)
			}
		}
		fmt.Println(report.PerIssueTable(fmt.Sprintf("Direct judge on %v (scale 1/%d)", d, scale),
			metrics.Score(d, outcomes)))
		return
	}
	inputs := make([]pipeline.Input, len(suite))
	for i, pf := range suite {
		inputs[i] = pipeline.Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
	}
	workers := runtime.GOMAXPROCS(0)
	results, stats, err := pipeline.Run(ctx, pipeline.Config{
		Tools: agent.NewTools(d),
		Judge: jd,
		Stages: []pipeline.StageSpec{
			{Name: pipeline.StageCompile, Workers: workers},
			{Name: pipeline.StageExec, Workers: workers},
			{Name: pipeline.StageJudge, Workers: workers},
		},
		RecordAll:     recordAll,
		KeepResponses: true,
	}, inputs)
	fail(err)
	outcomes := make([]metrics.Outcome, len(results))
	shown := 0
	for i, r := range results {
		v := r.Verdict == judge.Valid
		if pipelineVerdict {
			v = r.Valid
		}
		outcomes[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: v}
		if shown < show && r.Evaluation != nil {
			fmt.Printf("--- %s (issue %d, pipeline valid=%v) ---\n%s\n",
				r.Name, suite[i].Issue, r.Valid, r.Evaluation.Response)
			shown++
		}
	}
	title := fmt.Sprintf("%s on %v (scale 1/%d)", mode, d, scale)
	fmt.Println(report.PerIssueTable(title, metrics.Score(d, outcomes)))
	fmt.Printf("stage executions: compiles=%d runs=%d judge-calls=%d\n",
		stats.Compiles, stats.Executions, stats.JudgeCalls)
}

// stopProfiles finalises -cpuprofile/-memprofile; fail routes through
// it so profiles survive error exits (os.Exit skips defers), which is
// exactly when a -timeout-bounded profiling run ends.
var stopProfiles = func() error { return nil }

func fail(err error) {
	if err != nil {
		_ = stopProfiles()
		fmt.Fprintln(os.Stderr, "judgebench:", err)
		os.Exit(1)
	}
}
