// Command judgebench runs a single judge or pipeline configuration
// against a probed suite and prints its per-issue scorecard — the tool
// for exploring configurations beyond the paper's fixed experiments.
//
// Usage:
//
//	judgebench -dialect acc|omp -mode direct|agent|indirect|pipeline1|pipeline2 \
//	           [-scale K] [-seed N] [-backend NAME] [-show N] [-record-all=false]
//	judgebench -experiment NAME [-scale K] [-seed N] [-backend NAME]
//	judgebench -list
//
// -show N prints N sample prompt/response transcripts. -experiment
// dispatches any registered experiment through the same generic path
// cmd/llm4vv uses; -list enumerates registered experiments and
// backends.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"

	llm4vv "repro"
	"repro/internal/agent"
	"repro/internal/judge"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/spec"
)

func main() {
	dialectFlag := flag.String("dialect", "acc", "acc or omp")
	mode := flag.String("mode", "pipeline1", "direct|agent|indirect|pipeline1|pipeline2")
	scale := flag.Int("scale", 4, "divide suite sizes by this factor")
	seed := flag.Uint64("seed", llm4vv.DefaultModelSeed, "model seed")
	backend := flag.String("backend", llm4vv.DefaultBackend, "registered LLM backend")
	show := flag.Int("show", 0, "print this many sample transcripts")
	recordAll := flag.Bool("record-all", true, "run every stage for every file (false = short-circuit)")
	experiment := flag.String("experiment", "", "dispatch a registered experiment instead of a mode")
	list := flag.Bool("list", false, "list registered experiments and backends, then exit")
	flag.Parse()

	if *list {
		fmt.Println("registered experiments:")
		for _, e := range llm4vv.Experiments() {
			fmt.Printf("  %-10s %s\n", e.Name(), e.Description())
		}
		fmt.Println("registered backends:")
		for _, name := range llm4vv.Backends() {
			fmt.Printf("  %s\n", name)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	runner, err := llm4vv.NewRunner(
		llm4vv.WithBackend(*backend),
		llm4vv.WithSeed(*seed),
		llm4vv.WithRecordAll(*recordAll),
	)
	fail(err)

	if *experiment != "" {
		res, err := llm4vv.RunExperiment(ctx, runner, *experiment, llm4vv.ExperimentParams{Scale: *scale})
		fail(err)
		fmt.Println(res.Report())
		return
	}

	var d spec.Dialect
	switch *dialectFlag {
	case "acc":
		d = spec.OpenACC
	case "omp":
		d = spec.OpenMP
	default:
		fmt.Fprintln(os.Stderr, "judgebench: -dialect must be acc or omp")
		os.Exit(2)
	}
	suiteSpec := llm4vv.PartTwoSpec(d).Scaled(*scale)
	suite, err := llm4vv.BuildSuite(suiteSpec)
	fail(err)

	style := judge.AgentDirect
	pipelineVerdict := false
	switch *mode {
	case "direct":
		style = judge.Direct
	case "agent":
		style = judge.AgentDirect
	case "indirect":
		style = judge.AgentIndirect
	case "pipeline1":
		style, pipelineVerdict = judge.AgentDirect, true
	case "pipeline2":
		style, pipelineVerdict = judge.AgentIndirect, true
	default:
		fmt.Fprintln(os.Stderr, "judgebench: unknown -mode", *mode)
		os.Exit(2)
	}

	llm, err := llm4vv.NewBackend(*backend, *seed)
	fail(err)
	jd := &judge.Judge{LLM: llm, Style: style, Dialect: d}
	if style == judge.Direct {
		// The direct judge receives no tool info; evaluate outside the
		// pipeline for fidelity to Part One.
		outcomes := make([]metrics.Outcome, len(suite))
		for i, pf := range suite {
			ev, err := jd.Evaluate(ctx, pf.Source, nil)
			fail(err)
			outcomes[i] = metrics.Outcome{Issue: pf.Issue, JudgedValid: ev.Verdict == judge.Valid}
			if i < *show {
				fmt.Printf("--- %s (issue %d) ---\n%s\n", pf.Name, pf.Issue, ev.Response)
			}
		}
		fmt.Println(report.PerIssueTable(fmt.Sprintf("Direct judge on %v (scale 1/%d)", d, *scale),
			metrics.Score(d, outcomes)))
		return
	}

	inputs := make([]pipeline.Input, len(suite))
	for i, pf := range suite {
		inputs[i] = pipeline.Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
	}
	// Judge-only scorecards (agent/indirect) need every file judged;
	// short-circuiting would score dropped files as judge-invalid and
	// measure the pipeline instead of the judge.
	runRecordAll := *recordAll
	if !pipelineVerdict && !runRecordAll {
		fmt.Fprintln(os.Stderr, "judgebench: -mode", *mode, "scores the judge alone; forcing -record-all=true")
		runRecordAll = true
	}
	workers := runtime.GOMAXPROCS(0)
	results, stats, err := pipeline.Run(ctx, pipeline.Config{
		Tools:          agent.NewTools(d),
		Judge:          jd,
		CompileWorkers: workers,
		ExecWorkers:    workers,
		JudgeWorkers:   workers,
		RecordAll:      runRecordAll,
		KeepResponses:  *show > 0,
	}, inputs)
	fail(err)
	outcomes := make([]metrics.Outcome, len(results))
	shown := 0
	for i, r := range results {
		v := r.Verdict == judge.Valid
		if pipelineVerdict {
			v = r.Valid
		}
		outcomes[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: v}
		if shown < *show && r.Evaluation != nil {
			fmt.Printf("--- %s (issue %d, pipeline valid=%v) ---\n%s\n",
				r.Name, suite[i].Issue, r.Valid, r.Evaluation.Response)
			shown++
		}
	}
	title := fmt.Sprintf("%s on %v (scale 1/%d)", *mode, d, *scale)
	fmt.Println(report.PerIssueTable(title, metrics.Score(d, outcomes)))
	fmt.Printf("stage executions: compiles=%d runs=%d judge-calls=%d\n",
		stats.Compiles, stats.Executions, stats.JudgeCalls)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "judgebench:", err)
		os.Exit(1)
	}
}
