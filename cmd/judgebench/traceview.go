package main

// The -trace-view renderer: a JSONL trace file (fragments written by
// any process's -trace flag, or several files concatenated) rendered
// as a terminal waterfall — one block per trace, spans indented under
// their parents, each with a duration bar proportional to its share
// of the trace's wall-clock window. Fragments from different
// processes that share a trace ID merge into one block, each span
// tagged with the process that recorded it.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
)

// barWidth is the width of the waterfall gutter in cells; a span's
// bar is its [start, start+dur) window scaled into it.
const barWidth = 32

// viewSpan is one span joined with the process name of the fragment
// that carried it.
type viewSpan struct {
	trace.SpanRecord
	process string
}

// viewTrace is one trace assembled from every fragment sharing its ID,
// in file order (fragments flush as their roots end, so file order
// approximates completion order).
type viewTrace struct {
	id    string
	spans []viewSpan
}

// viewTraces reads a JSONL trace file and writes its waterfall to w.
// Unparsable lines fail the view — a trace file is machine-written,
// so a bad line means the wrong file, not noise to skip.
func viewTraces(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	byID := map[string]*viewTrace{}
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var rec trace.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("%s:%d: %w", path, line, err)
		}
		vt := byID[rec.Trace]
		if vt == nil {
			vt = &viewTrace{id: rec.Trace}
			byID[rec.Trace] = vt
			order = append(order, rec.Trace)
		}
		for _, sp := range rec.Spans {
			vt.spans = append(vt.spans, viewSpan{SpanRecord: sp, process: rec.Process})
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(order) == 0 {
		fmt.Fprintf(w, "%s: no traces\n", path)
		return nil
	}
	for _, id := range order {
		renderTrace(w, byID[id])
	}
	fmt.Fprintf(w, "%d trace(s)\n", len(order))
	return nil
}

// renderTrace prints one trace block: header, then the span tree.
// Spans nest under their parent when the parent span is present in
// the assembled trace; orphans (parents recorded by a process whose
// fragments are not in this file) render as additional roots.
func renderTrace(w io.Writer, vt *viewTrace) {
	if len(vt.spans) == 0 {
		return
	}
	start, end := vt.spans[0].StartNS, vt.spans[0].StartNS
	present := make(map[string]bool, len(vt.spans))
	procs := map[string]bool{}
	for _, sp := range vt.spans {
		if sp.StartNS < start {
			start = sp.StartNS
		}
		if e := sp.StartNS + sp.DurNS; e > end {
			end = e
		}
		present[sp.ID] = true
		procs[sp.process] = true
	}
	window := end - start
	if window <= 0 {
		window = 1
	}

	children := map[string][]viewSpan{}
	var roots []viewSpan
	for _, sp := range vt.spans {
		if sp.Parent != "" && present[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	byStart := func(s []viewSpan) {
		sort.SliceStable(s, func(i, j int) bool { return s[i].StartNS < s[j].StartNS })
	}
	byStart(roots)

	fmt.Fprintf(w, "trace %s  %s  %d span(s), %d process(es)\n",
		vt.id, time.Duration(window), len(vt.spans), len(procs))
	var walk func(sp viewSpan, depth int)
	walk = func(sp viewSpan, depth int) {
		fmt.Fprintln(w, renderSpan(sp, depth, start, window))
		kids := children[sp.ID]
		byStart(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 1)
	}
	fmt.Fprintln(w)
}

// renderSpan formats one waterfall row: indented name, the duration
// bar positioned inside the trace window, duration, process, and any
// attributes.
func renderSpan(sp viewSpan, depth int, traceStart, window int64) string {
	label := strings.Repeat("  ", depth) + sp.Name
	if len(label) > 30 {
		label = label[:27] + "..."
	}

	lo := int((sp.StartNS - traceStart) * barWidth / window)
	hi := int((sp.StartNS - traceStart + sp.DurNS) * barWidth / window)
	if lo < 0 {
		lo = 0
	}
	if hi > barWidth {
		hi = barWidth
	}
	if hi <= lo {
		hi = lo + 1 // every span shows at least one cell
		if hi > barWidth {
			lo, hi = barWidth-1, barWidth
		}
	}
	bar := strings.Repeat(" ", lo) + strings.Repeat("#", hi-lo) + strings.Repeat(" ", barWidth-hi)

	row := fmt.Sprintf("  %-30s [%s] %10s", label, bar, time.Duration(sp.DurNS).Round(time.Microsecond))
	if sp.process != "" {
		row += "  " + sp.process
	}
	for _, a := range sp.Attrs {
		row += fmt.Sprintf("  %s=%s", a.Key, a.Value)
	}
	return row
}
