// Command probegen generates a negative-probing suite and writes the
// files to a directory, with a manifest recording each file's
// ground-truth issue and the exact mutation applied. Useful for
// inspecting what the experiments actually judge, and for feeding the
// suite to external tools.
//
// Usage:
//
//	probegen -dialect acc|omp -part 1|2 [-scale K] [-out DIR]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	llm4vv "repro"
	"repro/internal/spec"
)

type manifestEntry struct {
	Name     string `json:"name"`
	Issue    int    `json:"issue"`
	IssueTxt string `json:"issue_description"`
	Valid    bool   `json:"valid"`
	Template string `json:"template"`
	Mutation string `json:"mutation"`
	Language string `json:"language"`
}

func main() {
	dialectFlag := flag.String("dialect", "acc", "acc or omp")
	part := flag.Int("part", 2, "paper experiment part (1 or 2)")
	scale := flag.Int("scale", 1, "divide suite sizes by this factor")
	out := flag.String("out", "probed-suite", "output directory")
	flag.Parse()

	var d spec.Dialect
	switch *dialectFlag {
	case "acc":
		d = spec.OpenACC
	case "omp":
		d = spec.OpenMP
	default:
		fmt.Fprintln(os.Stderr, "probegen: -dialect must be acc or omp")
		os.Exit(2)
	}
	var suiteSpec llm4vv.SuiteSpec
	if *part == 1 {
		suiteSpec = llm4vv.PartOneSpec(d)
	} else {
		suiteSpec = llm4vv.PartTwoSpec(d)
	}
	suiteSpec = suiteSpec.Scaled(*scale)

	suite, err := llm4vv.BuildSuite(suiteSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "probegen:", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "probegen:", err)
		os.Exit(1)
	}
	manifest := make([]manifestEntry, 0, len(suite))
	for _, pf := range suite {
		path := filepath.Join(*out, pf.Name)
		if err := os.WriteFile(path, []byte(pf.Source), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "probegen:", err)
			os.Exit(1)
		}
		manifest = append(manifest, manifestEntry{
			Name:     pf.Name,
			Issue:    int(pf.Issue),
			IssueTxt: pf.Issue.Description(d),
			Valid:    pf.Issue.Valid(),
			Template: pf.Template,
			Mutation: pf.Mutation,
			Language: pf.Lang.String(),
		})
	}
	data, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "probegen:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(filepath.Join(*out, "manifest.json"), data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "probegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d files + manifest.json to %s\n", len(suite), *out)
}
