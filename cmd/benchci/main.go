// Command benchci turns `go test -bench` output into a CI gate for
// the reproduced result shapes. The benchmark harness reports every
// headline accuracy/bias metric of the paper's tables via
// b.ReportMetric; benchci parses those custom metrics (timing units —
// ns/op, B/op, allocs/op — are machine-dependent and ignored), writes
// them to a JSON artifact, and compares them against a committed
// baseline, failing when any metric drifts beyond tolerance. The
// metrics are deterministic functions of the experiment seeds, so
// under an unchanged model any drift is a behaviour change, not
// noise; the tolerances exist to absorb intentional small
// recalibrations without a baseline churn on every PR.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' | \
//	    benchci -out BENCH_ci.json -baseline BENCH_baseline.json
//	go test -bench . -benchtime 1x -run '^$' | \
//	    benchci -write-baseline BENCH_baseline.json
//
// -tol-pct and -tol-bias set the drift tolerances for percentage
// metrics (units ending in %) and bias metrics. A baseline key absent
// from the current run fails the gate (a table disappeared); a new
// key not in the baseline is reported but passes (a table was added —
// regenerate the baseline to start gating it).
//
// Zero metrics on stdin is always an error: an upstream bench run
// that failed or panicked must not fall through to an empty-input
// success. This guard pairs with pipefail on the CI step (`shell:
// bash`) — either alone leaves a masking window; together a broken
// bench pipeline cannot pass.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	out := flag.String("out", "BENCH_ci.json", "write parsed metrics to this JSON artifact")
	baselinePath := flag.String("baseline", "", "compare metrics against this committed baseline")
	writeBaseline := flag.String("write-baseline", "", "write the parsed metrics as a new baseline and exit")
	tolPct := flag.Float64("tol-pct", 2.0, "allowed drift for %-unit metrics, in percentage points")
	tolBias := flag.Float64("tol-bias", 0.1, "allowed drift for bias metrics")
	flag.Parse()

	metrics, err := parseBench(os.Stdin)
	fail(err)
	if len(metrics) == 0 {
		fail(fmt.Errorf("no benchmark metrics found on stdin (run `go test -bench . -benchtime 1x -run '^$'`)"))
	}

	if *writeBaseline != "" {
		fail(writeJSON(*writeBaseline, metrics))
		fmt.Printf("benchci: wrote %d metrics to %s\n", len(metrics), *writeBaseline)
		return
	}

	fail(writeJSON(*out, metrics))
	fmt.Printf("benchci: wrote %d metrics to %s\n", len(metrics), *out)
	if *baselinePath == "" {
		return
	}

	data, err := os.ReadFile(*baselinePath)
	fail(err)
	var baseline map[string]float64
	fail(json.Unmarshal(data, &baseline))

	var failures []string
	keys := make([]string, 0, len(baseline))
	for k := range baseline {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		want := baseline[k]
		got, ok := metrics[k]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run (baseline %.4f)", k, want))
			continue
		}
		tol := *tolBias
		if strings.HasSuffix(k, "%") {
			tol = *tolPct
		}
		if drift := math.Abs(got - want); drift > tol {
			failures = append(failures, fmt.Sprintf("%s: %.4f drifted %.4f from baseline %.4f (tolerance %.4f)", k, got, drift, want, tol))
		}
	}
	for k := range metrics {
		if _, ok := baseline[k]; !ok {
			fmt.Printf("benchci: new metric %s = %.4f (not in baseline; regenerate to gate it)\n", k, metrics[k])
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchci: %d metric(s) drifted from %s:\n", len(failures), *baselinePath)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchci: all %d baseline metrics within tolerance\n", len(keys))
}

// parseBench extracts the custom (value, unit) metric pairs from
// `go test -bench` output lines, keying them as "BenchmarkName/unit".
// A benchmark result line is: name, iteration count, then pairs.
func parseBench(f *os.File) (map[string]float64, error) {
	metrics := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw output so the CI log keeps the full table.
		fmt.Println(line)
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimProcSuffix(fields[0])
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // malformed pair; stop reading this line
			}
			unit := fields[i+1]
			if skipUnit(unit) {
				continue
			}
			metrics[name+"/"+unit] = val
		}
	}
	return metrics, sc.Err()
}

// trimProcSuffix drops the -GOMAXPROCS suffix so keys are stable
// across runner shapes.
func trimProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// skipUnit filters the machine-dependent units; only the harness's
// deterministic custom metrics gate the build.
func skipUnit(unit string) bool {
	switch unit {
	case "ns/op", "B/op", "allocs/op", "MB/s":
		return true
	}
	return false
}

func writeJSON(path string, metrics map[string]float64) error {
	data, err := json.MarshalIndent(metrics, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchci:", err)
		os.Exit(1)
	}
}
