// Command benchci turns `go test -bench` output into a CI gate for
// the reproduced result shapes and for hot-path performance. The
// benchmark harness reports every headline accuracy/bias metric of
// the paper's tables via b.ReportMetric, and the BenchmarkThroughput*
// suite adds files/sec and allocs/op; benchci parses those metrics,
// writes them to a JSON artifact, and compares them against a
// committed baseline, failing when any gated metric drifts beyond its
// tolerance.
//
// Metric classes and their gates:
//
//   - accuracy: units ending in "%" (tolerance -tol-pct, absolute
//     percentage points) and everything else not classified below
//     (tolerance -tol-bias, absolute). Deterministic functions of the
//     experiment seeds — drift is a behaviour change, not noise.
//   - throughput: units ending in "files/sec". Machine-dependent, so
//     gated on a wide ratio band: the gate fails only when the
//     current rate falls below baseline / -tol-throughput-factor.
//     Speedups always pass; regenerate the baseline to ratchet.
//   - alloc: units ending in "allocs/op". Nearly machine-independent
//     (Go version shifts aside); fails when current exceeds
//     baseline * -tol-alloc-factor.
//   - report-only: units ending in "-ns" (the p50/p99 stage latency
//     diagnostics). Written to the artifact, never gated, and never
//     written into a baseline.
//
// -gate selects which classes gate the run: "all" (default),
// "accuracy" (skip perf classes — the bench job, whose -benchtime 1x
// timing is too noisy to gate), or "perf" (gate only throughput and
// alloc — the perf job, which runs only the throughput benchmarks and
// therefore lacks the accuracy keys). Baseline keys outside the
// selected classes are ignored rather than reported missing.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' | \
//	    benchci -gate accuracy -out BENCH_ci.json -baseline BENCH_baseline.json
//	go test -bench 'BenchmarkThroughput' -benchtime 3x -run '^$' | \
//	    benchci -gate perf -out BENCH_perf.json -baseline BENCH_baseline.json
//	go test -bench . -benchtime 1x -run '^$' | \
//	    benchci -gate accuracy -write-baseline BENCH_baseline.json
//	go test -bench 'BenchmarkThroughput' -benchtime 3x -run '^$' | \
//	    benchci -gate perf -write-baseline BENCH_baseline.json
//
// -write-baseline honours -gate and merges: only keys in the gated
// classes are refreshed, and existing baseline entries outside them
// are preserved. That matters because the committed baseline is
// mixed-cadence — accuracy keys come from the full -benchtime 1x run
// while throughput/alloc keys come from the -benchtime 3x throughput
// run (one-iteration perf numbers are exactly the noise the bench
// job refuses to gate) — so regenerating it is the two commands
// above, in either order.
//
// A gated baseline key absent from the current run fails the gate (a
// table disappeared); a new key not in the baseline is reported but
// passes (a table was added — regenerate the baseline to start gating
// it).
//
// Zero metrics on stdin is always an error: an upstream bench run
// that failed or panicked must not fall through to an empty-input
// success. This guard pairs with pipefail on the CI step (`shell:
// bash`) — either alone leaves a masking window; together a broken
// bench pipeline cannot pass.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metricClass partitions metric keys by gating rule.
type metricClass int

const (
	classPct        metricClass = iota // "%" units: absolute tolerance in points
	classBias                          // default: absolute tolerance
	classThroughput                    // files/sec: lower-bound ratio band
	classAlloc                         // allocs/op: upper-bound ratio band
	classReport                        // *-ns diagnostics: artifact-only
)

func classify(key string) metricClass {
	switch {
	case strings.HasSuffix(key, "files/sec"):
		return classThroughput
	case strings.HasSuffix(key, "allocs/op"):
		return classAlloc
	case strings.HasSuffix(key, "-ns"):
		return classReport
	case strings.HasSuffix(key, "%"):
		return classPct
	default:
		return classBias
	}
}

func main() {
	out := flag.String("out", "BENCH_ci.json", "write parsed metrics to this JSON artifact")
	baselinePath := flag.String("baseline", "", "compare metrics against this committed baseline")
	writeBaseline := flag.String("write-baseline", "", "write the parsed metrics as a new baseline and exit")
	tolPct := flag.Float64("tol-pct", 2.0, "allowed drift for %-unit metrics, in percentage points")
	tolBias := flag.Float64("tol-bias", 0.1, "allowed drift for bias metrics")
	tolThroughput := flag.Float64("tol-throughput-factor", 4.0, "files/sec gate fails when current < baseline/factor")
	tolAlloc := flag.Float64("tol-alloc-factor", 1.5, "allocs/op gate fails when current > baseline*factor")
	gate := flag.String("gate", "all", "metric classes to gate: all | accuracy | perf")
	flag.Parse()

	switch *gate {
	case "all", "accuracy", "perf":
	default:
		fail(fmt.Errorf("unknown -gate %q (want all, accuracy, or perf)", *gate))
	}

	metrics, err := parseBench(os.Stdin)
	fail(err)
	if len(metrics) == 0 {
		fail(fmt.Errorf("no benchmark metrics found on stdin (run `go test -bench . -benchtime 1x -run '^$'`)"))
	}

	opts := gateOptions{
		Gate:             *gate,
		TolPct:           *tolPct,
		TolBias:          *tolBias,
		ThroughputFactor: *tolThroughput,
		AllocFactor:      *tolAlloc,
	}

	if *writeBaseline != "" {
		// Merge into the existing baseline when there is one. Only a
		// genuinely missing file may start from empty — any other read
		// failure must abort, or a transient error would silently strip
		// every other-class key (and gateMetrics iterates baseline keys,
		// so the next run would pass vacuously un-gated).
		base := map[string]float64{}
		data, err := os.ReadFile(*writeBaseline)
		switch {
		case err == nil:
			fail(json.Unmarshal(data, &base))
		case errors.Is(err, fs.ErrNotExist):
		default:
			fail(err)
		}
		refreshed := mergeBaseline(base, metrics, opts)
		fail(writeJSON(*writeBaseline, base))
		fmt.Printf("benchci: refreshed %d of %d metrics in %s (gate=%s)\n", refreshed, len(base), *writeBaseline, *gate)
		return
	}

	fail(writeJSON(*out, metrics))
	fmt.Printf("benchci: wrote %d metrics to %s\n", len(metrics), *out)
	if *baselinePath == "" {
		return
	}

	data, err := os.ReadFile(*baselinePath)
	fail(err)
	var baseline map[string]float64
	fail(json.Unmarshal(data, &baseline))

	failures, checked := gateMetrics(metrics, baseline, opts)
	for k := range metrics {
		if _, ok := baseline[k]; !ok && classify(k) != classReport {
			fmt.Printf("benchci: new metric %s = %.4f (not in baseline; regenerate to gate it)\n", k, metrics[k])
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchci: %d metric(s) drifted from %s:\n", len(failures), *baselinePath)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchci: all %d gated baseline metrics within tolerance (gate=%s)\n", checked, *gate)
}

// gateOptions carries the gating tolerances and class selection.
type gateOptions struct {
	Gate             string  // all | accuracy | perf
	TolPct           float64 // absolute points for "%" units
	TolBias          float64 // absolute for bias units
	ThroughputFactor float64 // files/sec floor = baseline / factor
	AllocFactor      float64 // allocs/op ceiling = baseline * factor
}

// gated reports whether a metric class participates under the
// selected gate.
func (o gateOptions) gated(c metricClass) bool {
	switch c {
	case classReport:
		return false
	case classThroughput, classAlloc:
		return o.Gate != "accuracy"
	default:
		return o.Gate != "perf"
	}
}

// mergeBaseline refreshes base in place from a run's metrics: only
// keys in the gated classes are written (report-only keys never are),
// existing entries outside them are preserved — the committed
// baseline mixes cadences, accuracy from the full 1x run and perf
// from the 3x throughput run. Returns how many keys were refreshed.
func mergeBaseline(base, metrics map[string]float64, opts gateOptions) (refreshed int) {
	for k, v := range metrics {
		if c := classify(k); c != classReport && opts.gated(c) {
			base[k] = v
			refreshed++
		}
	}
	return refreshed
}

// gateMetrics compares a run's metrics against the baseline under the
// selected gate, returning human-readable failures (deterministic
// order: sorted keys) and how many baseline keys were checked.
func gateMetrics(metrics, baseline map[string]float64, opts gateOptions) (failures []string, checked int) {
	keys := make([]string, 0, len(baseline))
	for k := range baseline {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		class := classify(k)
		if !opts.gated(class) {
			continue
		}
		checked++
		want := baseline[k]
		got, ok := metrics[k]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run (baseline %.4f)", k, want))
			continue
		}
		switch class {
		case classThroughput:
			if floor := want / opts.ThroughputFactor; got < floor {
				failures = append(failures, fmt.Sprintf("%s: %.1f below throughput floor %.1f (baseline %.1f / factor %.2f)", k, got, floor, want, opts.ThroughputFactor))
			}
		case classAlloc:
			if ceil := want * opts.AllocFactor; got > ceil {
				failures = append(failures, fmt.Sprintf("%s: %.1f above alloc ceiling %.1f (baseline %.1f * factor %.2f)", k, got, ceil, want, opts.AllocFactor))
			}
		default:
			tol := opts.TolBias
			if class == classPct {
				tol = opts.TolPct
			}
			if drift := math.Abs(got - want); drift > tol {
				failures = append(failures, fmt.Sprintf("%s: %.4f drifted %.4f from baseline %.4f (tolerance %.4f)", k, got, drift, want, tol))
			}
		}
	}
	return failures, checked
}

// parseBench extracts the custom (value, unit) metric pairs from
// `go test -bench` output lines, keying them as "BenchmarkName/unit".
// A benchmark result line is: name, iteration count, then pairs.
func parseBench(f io.Reader) (map[string]float64, error) {
	metrics := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw output so the CI log keeps the full table.
		fmt.Println(line)
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimProcSuffix(fields[0])
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // malformed pair; stop reading this line
			}
			unit := fields[i+1]
			if skipUnit(unit) {
				continue
			}
			metrics[name+"/"+unit] = val
		}
	}
	return metrics, sc.Err()
}

// trimProcSuffix drops the -GOMAXPROCS suffix so keys are stable
// across runner shapes.
func trimProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// skipUnit filters the units that are never meaningful to record:
// wall-clock and byte counts are machine-dependent noise. allocs/op
// stays — it is deterministic enough to gate on a ratio band, and the
// throughput suite's alloc discipline is exactly what the perf gate
// protects.
func skipUnit(unit string) bool {
	switch unit {
	case "ns/op", "B/op", "MB/s":
		return true
	}
	return false
}

func writeJSON(path string, metrics map[string]float64) error {
	data, err := json.MarshalIndent(metrics, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchci:", err)
		os.Exit(1)
	}
}
