package main

import (
	"strings"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		key  string
		want metricClass
	}{
		{"BenchmarkTableI/acc%", classPct},
		{"BenchmarkTableI/bias", classBias},
		{"BenchmarkPanelAgreement/kappa", classBias},
		{"BenchmarkThroughputStoreWrite/files/sec", classThroughput},
		{"BenchmarkThroughputStoreWrite/allocs/op", classAlloc},
		{"BenchmarkThroughputPipeline/judge-p99-ns", classReport},
		{"BenchmarkThroughputPipeline/compile-p50-ns", classReport},
	}
	for _, c := range cases {
		if got := classify(c.key); got != c.want {
			t.Errorf("classify(%q) = %v, want %v", c.key, got, c.want)
		}
	}
}

func TestParseBench(t *testing.T) {
	out := `goos: linux
BenchmarkTableI-8 	1	123 ns/op	56.71 acc%	0.6338 bias	100 B/op	5 allocs/op
BenchmarkThroughputStoreWrite 	3	57919 ns/op	1120219 files/sec	68 allocs/op
not a benchmark line
BenchmarkBroken 	1	notanumber acc%
PASS
`
	metrics, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkTableI/acc%":                    56.71,
		"BenchmarkTableI/bias":                    0.6338,
		"BenchmarkTableI/allocs/op":               5,
		"BenchmarkThroughputStoreWrite/files/sec": 1120219,
		"BenchmarkThroughputStoreWrite/allocs/op": 68,
	}
	if len(metrics) != len(want) {
		t.Fatalf("parsed %d metrics %v, want %d", len(metrics), metrics, len(want))
	}
	for k, v := range want {
		if metrics[k] != v {
			t.Errorf("metrics[%q] = %v, want %v", k, metrics[k], v)
		}
	}
	// ns/op and B/op are machine noise and must not be recorded; the
	// -GOMAXPROCS suffix must be trimmed.
	for k := range metrics {
		if strings.HasSuffix(k, "ns/op") || strings.HasSuffix(k, "B/op") {
			t.Errorf("machine-dependent unit recorded: %s", k)
		}
		if strings.Contains(k, "-8/") {
			t.Errorf("GOMAXPROCS suffix not trimmed: %s", k)
		}
	}
}

func TestGateMetricsClasses(t *testing.T) {
	baseline := map[string]float64{
		"B/acc%":      50,
		"B/bias":      0.5,
		"B/files/sec": 1000,
		"B/allocs/op": 100,
	}
	opts := gateOptions{Gate: "all", TolPct: 2, TolBias: 0.1, ThroughputFactor: 4, AllocFactor: 1.5}

	// All within tolerance: slower but above floor, fewer allocs, tiny
	// accuracy drift.
	ok := map[string]float64{"B/acc%": 51, "B/bias": 0.45, "B/files/sec": 300, "B/allocs/op": 60}
	if failures, checked := gateMetrics(ok, baseline, opts); len(failures) != 0 || checked != 4 {
		t.Fatalf("clean run: failures=%v checked=%d", failures, checked)
	}

	// Each class fails on its own rule.
	bad := map[string]float64{"B/acc%": 53, "B/bias": 0.7, "B/files/sec": 200, "B/allocs/op": 151}
	failures, _ := gateMetrics(bad, baseline, opts)
	if len(failures) != 4 {
		t.Fatalf("want 4 failures, got %v", failures)
	}

	// Throughput gains and alloc drops never fail.
	better := map[string]float64{"B/acc%": 50, "B/bias": 0.5, "B/files/sec": 1e9, "B/allocs/op": 1}
	if failures, _ := gateMetrics(better, baseline, opts); len(failures) != 0 {
		t.Fatalf("improvements must pass, got %v", failures)
	}
}

func TestGateMetricsGateSelection(t *testing.T) {
	baseline := map[string]float64{
		"B/acc%":      50,
		"B/files/sec": 1000,
		"B/allocs/op": 100,
	}
	// accuracy gate: the perf keys are ignored even when missing from
	// the run entirely (the bench job does run them, but their one-shot
	// values must not gate).
	run := map[string]float64{"B/acc%": 50}
	opts := gateOptions{Gate: "accuracy", TolPct: 2, TolBias: 0.1, ThroughputFactor: 4, AllocFactor: 1.5}
	if failures, checked := gateMetrics(run, baseline, opts); len(failures) != 0 || checked != 1 {
		t.Fatalf("accuracy gate: failures=%v checked=%d", failures, checked)
	}
	// perf gate: the accuracy keys are ignored (the perf job runs only
	// the throughput benchmarks), but a missing gated perf key fails.
	perfRun := map[string]float64{"B/files/sec": 900}
	opts.Gate = "perf"
	failures, checked := gateMetrics(perfRun, baseline, opts)
	if checked != 2 {
		t.Fatalf("perf gate checked %d keys, want 2", checked)
	}
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") || !strings.Contains(failures[0], "missing") {
		t.Fatalf("perf gate: want one missing-allocs failure, got %v", failures)
	}
}

func TestGateMetricsReportOnlyNeverGated(t *testing.T) {
	baseline := map[string]float64{"B/judge-p99-ns": 1}
	run := map[string]float64{}
	for _, g := range []string{"all", "accuracy", "perf"} {
		failures, checked := gateMetrics(run, baseline, gateOptions{Gate: g, TolPct: 2, TolBias: 0.1, ThroughputFactor: 4, AllocFactor: 1.5})
		if len(failures) != 0 || checked != 0 {
			t.Fatalf("gate=%s: report-only key was gated: failures=%v checked=%d", g, failures, checked)
		}
	}
}

func TestMergeBaselinePreservesOtherClasses(t *testing.T) {
	base := map[string]float64{
		"B/acc%":      50,
		"B/files/sec": 1000,
		"B/allocs/op": 100,
	}
	// A perf-gated refresh touches only the perf classes; the stale
	// accuracy value and report-only input stay out of it.
	run := map[string]float64{
		"B/acc%":         60, // must NOT overwrite under gate=perf
		"B/files/sec":    2000,
		"B/allocs/op":    50,
		"B/judge-p99-ns": 123, // report-only: never baselined
	}
	opts := gateOptions{Gate: "perf", TolPct: 2, TolBias: 0.1, ThroughputFactor: 4, AllocFactor: 1.5}
	if refreshed := mergeBaseline(base, run, opts); refreshed != 2 {
		t.Fatalf("refreshed %d keys, want 2", refreshed)
	}
	want := map[string]float64{"B/acc%": 50, "B/files/sec": 2000, "B/allocs/op": 50}
	if len(base) != len(want) {
		t.Fatalf("baseline = %v, want %v", base, want)
	}
	for k, v := range want {
		if base[k] != v {
			t.Errorf("base[%q] = %v, want %v", k, base[k], v)
		}
	}
	// gate=all refreshes everything except report-only keys.
	opts.Gate = "all"
	if refreshed := mergeBaseline(base, run, opts); refreshed != 3 {
		t.Fatalf("gate=all refreshed %d keys, want 3", refreshed)
	}
	if base["B/acc%"] != 60 {
		t.Errorf("gate=all did not refresh accuracy key: %v", base["B/acc%"])
	}
	if _, ok := base["B/judge-p99-ns"]; ok {
		t.Error("report-only key leaked into the baseline")
	}
}
