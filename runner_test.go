package llm4vv

// Tests for the Runner / Backend / Experiment API: registry error
// paths, context cancellation with partial progress, short-circuit vs
// record-all verdict parity, evaluation caching, progress streaming,
// and the one-Register-call scenario extension path.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/judge"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/probe"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/testlang"
)

// smallSpec is a fast mixed suite for API tests.
func smallSpec(langs ...testlang.Language) SuiteSpec {
	if len(langs) == 0 {
		langs = []testlang.Language{testlang.LangC, testlang.LangCPP}
	}
	return SuiteSpec{
		Dialect: spec.OpenACC,
		Counts:  probe.Counts{4, 3, 3, 3, 3, 12},
		Langs:   langs,
		Seed:    2026,
	}
}

func TestBackendRegistryUnknownName(t *testing.T) {
	if _, err := NewBackend("no-such-backend", 1); err == nil {
		t.Fatal("NewBackend accepted an unknown name")
	} else if !strings.Contains(err.Error(), DefaultBackend) {
		t.Errorf("error %q does not list registered backends", err)
	}
	if _, err := NewRunner(WithBackend("no-such-backend")); err == nil {
		t.Fatal("NewRunner accepted an unknown backend name")
	}
}

func TestDefaultBackendRegistered(t *testing.T) {
	llm, err := NewBackend(DefaultBackend, DefaultModelSeed)
	if err != nil {
		t.Fatal(err)
	}
	if llm == nil {
		t.Fatal("default backend constructed nil endpoint")
	}
	found := false
	for _, name := range Backends() {
		if name == DefaultBackend {
			found = true
		}
	}
	if !found {
		t.Fatalf("Backends() = %v lacks %q", Backends(), DefaultBackend)
	}
}

// acceptAllLLM is a registrable toy endpoint.
type acceptAllLLM struct{}

func (acceptAllLLM) Complete(prompt string) string {
	if strings.Contains(prompt, "correct") {
		return "FINAL JUDGEMENT: correct"
	}
	return "FINAL JUDGEMENT: valid"
}

func TestRegisteredBackendPlugsIntoExperiments(t *testing.T) {
	RegisterBackend("test-accept-all", func(seed uint64) judge.LLM { return acceptAllLLM{} })
	r, err := NewRunner(WithBackend("test-accept-all"))
	if err != nil {
		t.Fatal(err)
	}
	s := smallSpec()
	sum, err := r.DirectProbing(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	// An accept-everything judge is exactly right on valid files and
	// exactly wrong on every mutated one.
	if got := sum.PerIssue[probe.IssueNone].Accuracy(); got != 1 {
		t.Errorf("accept-all backend scored %.2f on valid files, want 1.0", got)
	}
	if got := sum.PerIssue[probe.IssueDirective].Accuracy(); got != 0 {
		t.Errorf("accept-all backend scored %.2f on directive mutations, want 0.0", got)
	}
}

func TestExperimentRegistryErrorPath(t *testing.T) {
	if _, err := LookupExperiment("no-such-experiment"); err == nil {
		t.Fatal("LookupExperiment accepted an unknown name")
	} else if !strings.Contains(err.Error(), "part1") {
		t.Errorf("error %q does not list registered experiments", err)
	}
	r, err := NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunExperiment(context.Background(), r, "no-such-experiment", ExperimentParams{}); err == nil {
		t.Fatal("RunExperiment dispatched an unknown name")
	}
}

func TestBuiltinExperimentsRegistered(t *testing.T) {
	want := []string{"part1", "part2", "ablations", "genloop"}
	var got []string
	for _, e := range Experiments() {
		got = append(got, e.Name())
	}
	for i, name := range want {
		if i >= len(got) || got[i] != name {
			t.Fatalf("Experiments() order = %v, want prefix %v", got, want)
		}
	}
}

// toyCountResult demonstrates the single-Register-call extension path.
type toyCountResult struct {
	Files int
	Valid int
}

func (r *toyCountResult) Report() string {
	return fmt.Sprintf("toy-count: %d/%d files validated", r.Valid, r.Files)
}

func TestToyExperimentThroughGenericDispatch(t *testing.T) {
	// Adding a scenario is one Register call...
	RegisterExperimentFunc("test-toy-count", "count pipeline-validated files on a tiny suite",
		func(ctx context.Context, r *Runner, p ExperimentParams) (ExperimentResult, error) {
			results, _, err := r.ValidateSuite(ctx, smallSpec(), judge.AgentDirect)
			if err != nil {
				return nil, err
			}
			res := &toyCountResult{Files: len(results)}
			for _, fr := range results {
				if fr.Valid {
					res.Valid++
				}
			}
			return res, nil
		})
	// ...after which the generic front-end path runs it like a built-in.
	r, err := NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunExperiment(context.Background(), r, "test-toy-count", ExperimentParams{})
	if err != nil {
		t.Fatal(err)
	}
	toy, ok := res.(*toyCountResult)
	if !ok {
		t.Fatalf("generic dispatch returned %T", res)
	}
	if toy.Files != smallSpec().Total() {
		t.Errorf("toy experiment saw %d files, want %d", toy.Files, smallSpec().Total())
	}
	if !strings.Contains(res.Report(), "toy-count:") {
		t.Errorf("Report() = %q lacks experiment output", res.Report())
	}
	// And it shows up in the enumeration front-ends print.
	found := false
	for _, e := range Experiments() {
		if e.Name() == "test-toy-count" {
			found = true
		}
	}
	if !found {
		t.Error("registered toy experiment missing from Experiments()")
	}
}

func TestDirectProbingCancellation(t *testing.T) {
	r, err := NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.DirectProbing(ctx, smallSpec()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := r.PartTwo(ctx, smallSpec()); !errors.Is(err, context.Canceled) {
		t.Fatalf("PartTwo err = %v, want context.Canceled", err)
	}
	if _, err := r.GenerationLoop(ctx, spec.OpenACC, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("GenerationLoop err = %v, want context.Canceled", err)
	}
}

// TestShortCircuitRecordAllParity: the Runner's two pipeline modes
// must agree on every per-file verdict — including Fortran files that
// compile to no executable object (the fixed short-circuit drop).
func TestShortCircuitRecordAllParity(t *testing.T) {
	s := smallSpec(testlang.LangC, testlang.LangCPP, testlang.LangFortran)
	shortR, err := NewRunner(WithRecordAll(false))
	if err != nil {
		t.Fatal(err)
	}
	allR, err := NewRunner(WithRecordAll(true))
	if err != nil {
		t.Fatal(err)
	}
	shortRes, shortStats, err := shortR.ValidateSuite(context.Background(), s, judge.AgentDirect)
	if err != nil {
		t.Fatal(err)
	}
	allRes, allStats, err := allR.ValidateSuite(context.Background(), s, judge.AgentDirect)
	if err != nil {
		t.Fatal(err)
	}
	if len(shortRes) != len(allRes) {
		t.Fatalf("result lengths differ: %d vs %d", len(shortRes), len(allRes))
	}
	for i := range shortRes {
		if shortRes[i].Valid != allRes[i].Valid {
			t.Errorf("file %d (%s): short-circuit=%v record-all=%v",
				i, shortRes[i].Name, shortRes[i].Valid, allRes[i].Valid)
		}
	}
	if shortStats.JudgeCalls >= allStats.JudgeCalls {
		t.Errorf("short-circuit did not save judge calls: %d vs %d",
			shortStats.JudgeCalls, allStats.JudgeCalls)
	}
}

func TestEvalCachePreservesResults(t *testing.T) {
	s := smallSpec()
	plain, err := NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewRunner(WithEvalCache(true))
	if err != nil {
		t.Fatal(err)
	}
	a, err := plain.DirectProbing(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cached.DirectProbing(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Accuracy() != b.Accuracy() || a.Bias() != b.Bias() || a.Total != b.Total {
		t.Errorf("eval cache changed the summary: acc %.4f vs %.4f, bias %.4f vs %.4f",
			a.Accuracy(), b.Accuracy(), a.Bias(), b.Bias())
	}
}

func TestProgressStreaming(t *testing.T) {
	var mu sync.Mutex
	var events []Progress
	r, err := NewRunner(WithProgress(func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	s := smallSpec()
	if _, _, err := r.ValidateSuite(context.Background(), s, judge.AgentDirect); err != nil {
		t.Fatal(err)
	}
	if len(events) != s.Total() {
		t.Fatalf("got %d progress events, want %d", len(events), s.Total())
	}
	maxDone := 0
	for _, e := range events {
		if e.Total != s.Total() {
			t.Errorf("event Total = %d, want %d", e.Total, s.Total())
		}
		if !strings.HasPrefix(e.Phase, "pipeline/") {
			t.Errorf("event phase %q lacks pipeline prefix", e.Phase)
		}
		if e.Done > maxDone {
			maxDone = e.Done
		}
	}
	if maxDone != s.Total() {
		t.Errorf("progress never reached %d/%d", maxDone, s.Total())
	}
}

// TestDeprecatedWrappersMatchRunner pins the compatibility contract:
// the old free functions are exactly the Runner under default options.
func TestDeprecatedWrappersMatchRunner(t *testing.T) {
	s := smallSpec()
	old, err := RunDirectProbing(s, DefaultModelSeed)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(WithSeed(DefaultModelSeed))
	if err != nil {
		t.Fatal(err)
	}
	neu, err := r.DirectProbing(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if old.Accuracy() != neu.Accuracy() || old.Bias() != neu.Bias() {
		t.Errorf("wrapper diverged from Runner: acc %.4f vs %.4f", old.Accuracy(), neu.Accuracy())
	}
	gOld := RunGenerationLoop(spec.OpenMP, 1, DefaultModelSeed)
	gNew, err := r.GenerationLoop(context.Background(), spec.OpenMP, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gOld.Candidates) != len(gNew.Candidates) {
		t.Errorf("generation wrapper diverged: %d vs %d candidates",
			len(gOld.Candidates), len(gNew.Candidates))
	}
}

// batchCallCountingLLM wraps the simulated model counting endpoint
// round-trips (CompleteBatch calls), not prompts — the probe for
// cross-shard judge-batch coalescing.
type batchCallCountingLLM struct {
	inner      *model.Model
	batchCalls atomic.Int64
}

func (c *batchCallCountingLLM) Complete(prompt string) string {
	c.batchCalls.Add(1)
	return c.inner.Complete(prompt)
}

func (c *batchCallCountingLLM) CompleteBatch(ctx context.Context, prompts []string) ([]string, error) {
	c.batchCalls.Add(1)
	return c.inner.CompleteBatch(ctx, prompts)
}

// TestCrossShardBatchCoalescing: on a resume-thinned run — most files
// already stored, the rest scattered across shards — the scheduler
// must merge each shard's undersized remainder into full endpoint
// batches instead of submitting one fragment per shard, and the
// resumed summary must stay identical to the all-fresh run.
func TestCrossShardBatchCoalescing(t *testing.T) {
	s := smallSpec()
	suite, err := BuildSuite(s)
	if err != nil {
		t.Fatal(err)
	}

	// Ground-truth verdicts for pre-populating the store, computed the
	// way any fresh run would.
	j := &judge.Judge{LLM: model.New(DefaultModelSeed), Style: judge.Direct, Dialect: s.Dialect}
	verdicts := make([]judge.Verdict, len(suite))
	for i, pf := range suite {
		ev, err := j.Evaluate(context.Background(), pf.Source, nil)
		if err != nil {
			t.Fatal(err)
		}
		verdicts[i] = ev.Verdict
	}

	counting := &batchCallCountingLLM{}
	name := fmt.Sprintf("test-batch-calls-%d", countingSerial.Add(1))
	RegisterBackend(name, func(seed uint64) judge.LLM {
		counting.inner = model.New(seed)
		return counting
	})

	// Pre-populate three out of every four files, leaving one pending
	// file per four — each shard of four holds a lone fragment, the
	// worst case for per-shard batch submission.
	path := filepath.Join(t.TempDir(), "run.jsonl")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	pending := 0
	for i, pf := range suite {
		if i%4 == 0 {
			pending++
			continue
		}
		err := st.Put(store.Record{
			Experiment: "direct-probing", Backend: name, Seed: DefaultModelSeed,
			FileHash: store.HashSource(pf.Source), Name: pf.Name,
			JudgeRan: true, Verdict: verdicts[i].String(),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	const shard = 4
	r := mustRunner(t,
		WithBackend(name), WithWorkers(1), WithShardSize(shard),
		WithStore(path), WithResume(true))
	sum, err := r.DirectProbing(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Parity: resuming from stored verdicts reproduces the all-fresh
	// summary exactly.
	ref, err := RunDirectProbing(s, DefaultModelSeed)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Accuracy() != ref.Accuracy() || sum.Mistakes != ref.Mistakes || sum.Total != ref.Total {
		t.Errorf("resumed summary diverged: acc %v/%v mistakes %d/%d total %d/%d",
			sum.Accuracy(), ref.Accuracy(), sum.Mistakes, ref.Mistakes, sum.Total, ref.Total)
	}

	// Coalescing: with one worker, the pending fragments accumulate
	// into batches of at least the shard size before submission, so
	// round-trips are bounded by ceil(pending/shard) — not by the
	// number of shards holding a fragment (which is pending itself).
	maxCalls := int64((pending + shard - 1) / shard)
	if got := counting.batchCalls.Load(); got > maxCalls {
		t.Errorf("endpoint saw %d batch calls for %d pending files (shard %d), want <= %d (cross-shard coalescing)",
			got, pending, shard, maxCalls)
	}
}

// TestStageOptionsValidation: WithStages/WithStageWorkers misuse must
// fail NewRunner, not hang or misbehave mid-experiment.
func TestStageOptionsValidation(t *testing.T) {
	if _, err := NewRunner(WithStageWorkers("lint", 4)); err == nil || !strings.Contains(err.Error(), "unknown pipeline stage") {
		t.Errorf("unknown stage name: err=%v", err)
	}
	if _, err := NewRunner(WithStageWorkers(pipeline.StageJudge, -2)); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("negative workers: err=%v", err)
	}
	if _, err := NewRunner(WithStages(pipeline.StageSpec{Name: pipeline.StageJudge, Batch: -1})); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("negative batch: err=%v", err)
	}
	if _, err := NewRunner(WithStages(
		pipeline.StageSpec{Name: pipeline.StageCompile, Workers: 2},
		pipeline.StageSpec{Name: pipeline.StageJudge, Workers: 8, Batch: 4},
	)); err != nil {
		t.Fatalf("valid stage specs rejected: %v", err)
	}
}

// TestStageWorkersParity: per-stage worker overrides are scheduling
// knobs — the experiment's verdicts must not move.
func TestStageWorkersParity(t *testing.T) {
	s := smallSpec(testlang.LangC, testlang.LangCPP, testlang.LangFortran)
	base, err := NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := NewRunner(
		WithStageWorkers(pipeline.StageCompile, 1),
		WithStageWorkers(pipeline.StageExec, 2),
		WithStages(pipeline.StageSpec{Name: pipeline.StageJudge, Workers: 7, Batch: 3}),
	)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := base.ValidateSuite(context.Background(), s, judge.AgentDirect)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := tuned.ValidateSuite(context.Background(), s, judge.AgentDirect)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("file %d: tuned run %+v != default run %+v", i, got[i], want[i])
		}
	}
}
