package llm4vv

import (
	"context"

	"repro/internal/genloop"
	"repro/internal/spec"
)

// GenerationResult re-exports the generation-loop outcome.
type GenerationResult = genloop.Result

// RunGenerationLoop executes the paper's future-work experiment
// (DESIGN.md E1): the LLM authors candidate tests per feature and the
// validation pipeline filters them, measuring how much trust the
// filter adds over raw generation.
//
// Deprecated: use NewRunner and Runner.GenerationLoop for
// cancellation and backend selection.
func RunGenerationLoop(d spec.Dialect, perFeature int, modelSeed uint64) *GenerationResult {
	// The background context never cancels and the default backend is
	// always registered, so the only error paths are unreachable.
	res, _ := seededRunner(modelSeed).GenerationLoop(context.Background(), d, perFeature)
	return res
}
