package llm4vv

import (
	"repro/internal/genloop"
	"repro/internal/judge"
	"repro/internal/spec"
)

// GenerationResult re-exports the generation-loop outcome.
type GenerationResult = genloop.Result

// RunGenerationLoop executes the paper's future-work experiment
// (DESIGN.md E1): the LLM authors candidate tests per feature and the
// validation pipeline filters them, measuring how much trust the
// filter adds over raw generation.
func RunGenerationLoop(d spec.Dialect, perFeature int, modelSeed uint64) *GenerationResult {
	return genloop.Run(genloop.Config{
		Dialect:     d,
		PerFeature:  perFeature,
		MaxAttempts: 4,
		ModelSeed:   modelSeed,
		JudgeStyle:  judge.AgentDirect,
	})
}
