package llm4vv

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/spec"
)

// ExperimentParams parameterises a registered experiment generically:
// every scenario receives the same knobs, so front-ends can dispatch
// any experiment without knowing its shape.
type ExperimentParams struct {
	// Dialects to run; empty means both OpenACC and OpenMP.
	Dialects []spec.Dialect
	// Scale divides suite sizes (1 = full size, the published tables).
	Scale int
	// PerFeature is the accepted-tests-per-feature target for
	// generation scenarios; 0 means the scenario's default.
	PerFeature int
}

// EffectiveDialects resolves the empty-slice default.
func (p ExperimentParams) EffectiveDialects() []spec.Dialect {
	if len(p.Dialects) == 0 {
		return []spec.Dialect{spec.OpenACC, spec.OpenMP}
	}
	return p.Dialects
}

// EffectiveScale resolves the zero-value default.
func (p ExperimentParams) EffectiveScale() int {
	if p.Scale < 1 {
		return 1
	}
	return p.Scale
}

// ExperimentResult is what a registered experiment returns: structured
// data the caller may type-assert, plus a human-readable report any
// front-end can print without knowing the experiment.
type ExperimentResult interface {
	Report() string
}

// Experiment is one named, registered workload: Part One, Part Two,
// the ablations, and the generation loop ship registered, and new
// scenarios join them with a single RegisterExperiment (or
// RegisterExperimentFunc) call.
type Experiment interface {
	// Name is the registry key front-ends dispatch on.
	Name() string
	// Description is a one-line summary for experiment listings.
	Description() string
	// Run executes the experiment on the Runner's configuration.
	Run(ctx context.Context, r *Runner, p ExperimentParams) (ExperimentResult, error)
}

var experimentRegistry = struct {
	sync.RWMutex
	byName map[string]Experiment
	order  []string
}{byName: map[string]Experiment{}}

// RegisterExperiment adds an experiment to the registry. Like
// RegisterBackend it panics on an empty name or duplicate
// registration: both are init-time programmer errors.
func RegisterExperiment(e Experiment) {
	name := e.Name()
	if name == "" {
		panic("llm4vv: RegisterExperiment with empty name")
	}
	experimentRegistry.Lock()
	defer experimentRegistry.Unlock()
	if _, dup := experimentRegistry.byName[name]; dup {
		panic(fmt.Sprintf("llm4vv: experiment %q registered twice", name))
	}
	experimentRegistry.byName[name] = e
	experimentRegistry.order = append(experimentRegistry.order, name)
}

// RegisterExperimentFunc registers a function-backed experiment — the
// one-call path for adding a scenario.
func RegisterExperimentFunc(name, description string, run func(ctx context.Context, r *Runner, p ExperimentParams) (ExperimentResult, error)) {
	RegisterExperiment(&funcExperiment{name: name, description: description, run: run})
}

type funcExperiment struct {
	name        string
	description string
	run         func(ctx context.Context, r *Runner, p ExperimentParams) (ExperimentResult, error)
}

func (f *funcExperiment) Name() string        { return f.name }
func (f *funcExperiment) Description() string { return f.description }
func (f *funcExperiment) Run(ctx context.Context, r *Runner, p ExperimentParams) (ExperimentResult, error) {
	return f.run(ctx, r, p)
}

// Experiments lists the registered experiments in registration order
// (built-ins first, in the order the paper presents them).
func Experiments() []Experiment {
	experimentRegistry.RLock()
	defer experimentRegistry.RUnlock()
	out := make([]Experiment, 0, len(experimentRegistry.order))
	for _, name := range experimentRegistry.order {
		out = append(out, experimentRegistry.byName[name])
	}
	return out
}

// LookupExperiment resolves a name, erroring with the registered names
// on a miss.
func LookupExperiment(name string) (Experiment, error) {
	experimentRegistry.RLock()
	e, ok := experimentRegistry.byName[name]
	order := append([]string(nil), experimentRegistry.order...)
	experimentRegistry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("llm4vv: unknown experiment %q (registered: %v)", name, order)
	}
	return e, nil
}

// RunExperiment dispatches a registered experiment by name — the
// generic path front-ends use.
func RunExperiment(ctx context.Context, r *Runner, name string, p ExperimentParams) (ExperimentResult, error) {
	e, err := LookupExperiment(name)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, r, p)
}
