package llm4vv

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/judge"
	"repro/internal/model"
)

// DefaultBackend names the registered endpoint every published
// experiment number was measured with: the simulated
// deepseek-coder-33B-instruct model.
const DefaultBackend = "deepseek-sim"

// BackendFactory constructs an LLM endpoint for a sampling seed. Equal
// seeds must give equal behaviour for experiments to stay reproducible.
//
// The required contract is judge.LLM (one prompt, one response), and
// endpoints opt into richer handling by implementing the optional
// capabilities: judge.ContextLLM for in-flight cancellation,
// judge.BatchLLM to receive whole shards of prompts in one
// CompleteBatch call (the Runner's sharded scheduler and the
// pipeline's judge stage detect it and batch accordingly), and
// genloop.Author (a GenerateTest method) for test authoring. The
// simulated deepseek backend implements Complete, CompleteBatch, and
// GenerateTest.
type BackendFactory func(seed uint64) judge.LLM

var backendRegistry = struct {
	sync.RWMutex
	factories map[string]BackendFactory
}{factories: map[string]BackendFactory{}}

// RegisterBackend makes an endpoint constructable by name through
// NewBackend and WithBackend, so alternate or simulated endpoints plug
// into every experiment without touching harness code. It panics on an
// empty name or a duplicate registration — both are programmer errors,
// caught at init time like http.Handle.
func RegisterBackend(name string, factory BackendFactory) {
	if name == "" || factory == nil {
		panic("llm4vv: RegisterBackend with empty name or nil factory")
	}
	backendRegistry.Lock()
	defer backendRegistry.Unlock()
	if _, dup := backendRegistry.factories[name]; dup {
		panic(fmt.Sprintf("llm4vv: backend %q registered twice", name))
	}
	backendRegistry.factories[name] = factory
}

// NewBackend constructs the named endpoint with the given seed,
// erroring on unknown names (the error lists what is registered).
func NewBackend(name string, seed uint64) (judge.LLM, error) {
	backendRegistry.RLock()
	factory, ok := backendRegistry.factories[name]
	backendRegistry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("llm4vv: unknown backend %q (registered: %v)", name, Backends())
	}
	return factory(seed), nil
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	backendRegistry.RLock()
	defer backendRegistry.RUnlock()
	names := make([]string, 0, len(backendRegistry.factories))
	for name := range backendRegistry.factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterBackend(DefaultBackend, func(seed uint64) judge.LLM { return model.New(seed) })
}

// NewModel returns the simulated deepseek-coder-33B-instruct endpoint.
//
// Deprecated: construct endpoints through the backend registry
// (NewBackend / WithBackend) instead.
func NewModel(seed uint64) judge.LLM { return model.New(seed) }
