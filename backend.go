package llm4vv

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ensemble"
	"repro/internal/fleet"
	"repro/internal/judge"
	"repro/internal/model"
	"repro/internal/remote"
	"repro/internal/rng"
)

// DefaultBackend names the registered endpoint every published
// experiment number was measured with: the simulated
// deepseek-coder-33B-instruct model.
const DefaultBackend = "deepseek-sim"

// BackendFactory constructs an LLM endpoint for a sampling seed. Equal
// seeds must give equal behaviour for experiments to stay reproducible.
//
// The required contract is judge.LLM (one prompt, one response), and
// endpoints opt into richer handling by implementing the optional
// capabilities: judge.ContextLLM for in-flight cancellation,
// judge.BatchLLM to receive whole shards of prompts in one
// CompleteBatch call (the Runner's sharded scheduler and the
// pipeline's judge stage detect it and batch accordingly), and
// genloop.Author (a GenerateTest method) for test authoring. The
// simulated deepseek backend implements Complete, CompleteBatch, and
// GenerateTest.
type BackendFactory func(seed uint64) judge.LLM

var backendRegistry = struct {
	sync.RWMutex
	factories map[string]BackendFactory
}{factories: map[string]BackendFactory{}}

// RegisterBackend makes an endpoint constructable by name through
// NewBackend and WithBackend, so alternate or simulated endpoints plug
// into every experiment without touching harness code. It panics on an
// empty name or a duplicate registration — both are programmer errors,
// caught at init time like http.Handle.
func RegisterBackend(name string, factory BackendFactory) {
	if name == "" || factory == nil {
		panic("llm4vv: RegisterBackend with empty name or nil factory")
	}
	backendRegistry.Lock()
	defer backendRegistry.Unlock()
	if _, dup := backendRegistry.factories[name]; dup {
		panic(fmt.Sprintf("llm4vv: backend %q registered twice", name))
	}
	backendRegistry.factories[name] = factory
}

// BackendSchemeFactory constructs an endpoint for a dynamic
// "scheme:argument" backend name, receiving the argument after the
// colon. The seed contract matches BackendFactory, though a scheme
// may document it as inert (a remote daemon's seed is fixed
// server-side).
type BackendSchemeFactory func(arg string, seed uint64) judge.LLM

var schemeRegistry = struct {
	sync.RWMutex
	factories map[string]BackendSchemeFactory
}{factories: map[string]BackendSchemeFactory{}}

// RegisterBackendScheme makes a whole family of endpoints
// constructable by prefixed name: after RegisterBackendScheme("remote",
// f), any "remote:<addr>" resolves through f without each address
// being registered individually. Concrete registrations take
// precedence over scheme resolution. Like RegisterBackend it panics
// on an empty scheme or a duplicate registration.
func RegisterBackendScheme(scheme string, factory BackendSchemeFactory) {
	if scheme == "" || factory == nil {
		panic("llm4vv: RegisterBackendScheme with empty scheme or nil factory")
	}
	schemeRegistry.Lock()
	defer schemeRegistry.Unlock()
	if _, dup := schemeRegistry.factories[scheme]; dup {
		panic(fmt.Sprintf("llm4vv: backend scheme %q registered twice", scheme))
	}
	schemeRegistry.factories[scheme] = factory
}

// NewBackend constructs the named endpoint with the given seed.
// Concrete registered names resolve first; names of the form
// "scheme:argument" then fall back to the scheme registry (so
// "remote:127.0.0.1:8080" dials a judging daemon without prior
// registration). Unknown names — and factories that return nil —
// are errors, not panics, because names arrive from flags and
// requests at runtime.
func NewBackend(name string, seed uint64) (judge.LLM, error) {
	backendRegistry.RLock()
	factory, ok := backendRegistry.factories[name]
	backendRegistry.RUnlock()
	if !ok {
		scheme, arg, cut := strings.Cut(name, ":")
		if cut {
			schemeRegistry.RLock()
			sf, sok := schemeRegistry.factories[scheme]
			schemeRegistry.RUnlock()
			if sok {
				if llm := sf(arg, seed); llm != nil {
					return llm, nil
				}
				return nil, fmt.Errorf("llm4vv: backend scheme %q produced no endpoint for %q", scheme, name)
			}
		}
		return nil, fmt.Errorf("llm4vv: unknown backend %q (registered: %v)", name, Backends())
	}
	llm := factory(seed)
	if llm == nil {
		return nil, fmt.Errorf("llm4vv: backend %q factory returned a nil endpoint", name)
	}
	return llm, nil
}

// Backends lists the registered backend names, sorted and distinct
// (the registry is a map, so each name appears exactly once).
// Scheme-resolved names ("remote:<addr>") appear only once registered
// concretely (see RegisterRemoteBackend), since a scheme denotes an
// open-ended family.
func Backends() []string {
	backendRegistry.RLock()
	names := make([]string, 0, len(backendRegistry.factories))
	for name := range backendRegistry.factories {
		names = append(names, name)
	}
	backendRegistry.RUnlock()
	sort.Strings(names)
	return names
}

// RegisterRemoteBackend concretely registers the judging daemon at
// addr under the name "remote:<addr>" and returns that name. Unlike
// RegisterBackend it is idempotent — front-ends call it from flag
// handling, where re-registration must not panic. Concrete
// registration is what admits a daemon into Backends() and therefore
// into the cross-backend compare sweep; ad-hoc "remote:<addr>" names
// resolve through the scheme registry without it.
//
// The seed passed at construction is inert for remote endpoints: the
// daemon's backend and seed are fixed when it starts, so experiments
// needing a particular seed must run against a daemon started with
// it.
func RegisterRemoteBackend(addr string) string {
	name := "remote:" + addr
	backendRegistry.Lock()
	defer backendRegistry.Unlock()
	if _, ok := backendRegistry.factories[name]; !ok {
		backendRegistry.factories[name] = func(seed uint64) judge.LLM { return remote.New(addr) }
	}
	return name
}

// fleetRouters memoizes one Router per address list: a Router owns a
// background health loop, so resolving "fleet:<addrs>" twice must
// share the instance rather than leak a second watcher.
var fleetRouters = struct {
	sync.Mutex
	routers map[string]*fleet.Router
}{routers: map[string]*fleet.Router{}}

func fleetRouter(addrs string) (*fleet.Router, error) {
	fleetRouters.Lock()
	defer fleetRouters.Unlock()
	if rt, ok := fleetRouters.routers[addrs]; ok {
		return rt, nil
	}
	rt, err := fleet.Dial(addrs)
	if err != nil {
		return nil, err
	}
	fleetRouters.routers[addrs] = rt
	return rt, nil
}

// RegisterFleetBackend concretely registers the judge fleet behind the
// comma-separated daemon address list under the name "fleet:<addrs>"
// and returns that name. Like RegisterRemoteBackend it is idempotent
// and exists for flag handling; concrete registration admits the
// fleet into Backends() and the compare sweep. The constructed router
// hashes each prompt onto its owning replica, fails over on replica
// death, and — replicas of one fleet serving the same backend and
// seed — produces reports byte-identical to a single daemon. The
// construction seed is inert, as for any remote endpoint.
func RegisterFleetBackend(addrs string) (string, error) {
	if _, err := fleetRouter(addrs); err != nil {
		return "", err
	}
	name := "fleet:" + addrs
	backendRegistry.Lock()
	defer backendRegistry.Unlock()
	if _, ok := backendRegistry.factories[name]; !ok {
		backendRegistry.factories[name] = func(seed uint64) judge.LLM {
			rt, err := fleetRouter(addrs)
			if err != nil {
				return nil
			}
			return rt
		}
	}
	return name, nil
}

// NewPanel constructs a voting ensemble from a member spec
// ("a+b+c[:strategy]", the argument of an "ensemble:" backend name):
// each member backend is resolved through the registry — including
// "remote:<addr>" members, so a panel can seat daemons — under its
// own derived seed, so a panel of N copies of one simulated backend
// seats N distinct judges rather than one echoed three times. Member
// i of backend b derives its seed from (seed, i, b) via the
// deterministic split rng, making panel behaviour a pure function of
// the panel seed; remote members' seeds are inert as always (the
// daemon's seed governs).
//
// With the Weighted strategy the panel starts with uniform weights;
// Runner panel phases recalibrate from run-store history (see
// panelWeights).
func NewPanel(spec string, seed uint64) (*ensemble.Panel, error) {
	names, strategy, err := ensemble.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	members := make([]ensemble.Member, len(names))
	for i, n := range names {
		llm, err := NewBackend(n, panelMemberSeed(seed, i, n))
		if err != nil {
			return nil, fmt.Errorf("llm4vv: ensemble member %d: %w", i, err)
		}
		members[i] = ensemble.Member{Name: fmt.Sprintf("%s#%d", n, i), LLM: llm}
	}
	return ensemble.New(ensemble.Config{Members: members, Strategy: strategy})
}

// panelMemberSeed derives member i's sampling seed from the panel
// seed. The rng split keys on both the index and the backend name, so
// reordering or renaming members changes their streams while equal
// specs reproduce equal panels.
func panelMemberSeed(seed uint64, i int, name string) uint64 {
	return rng.New(seed).Split(fmt.Sprintf("panel-member/%d/%s", i, name)).Uint64()
}

// RegisterEnsembleBackend concretely registers the panel described by
// spec ("a+b+c[:strategy]") under the name "ensemble:<spec>" and
// returns that name. Like RegisterRemoteBackend it is idempotent —
// front-ends call it from flag handling — and concrete registration
// is what admits a panel into Backends() and therefore into the
// cross-backend compare sweep, where it is scored like any single
// judge. The spec is validated here — member names resolved included,
// so register members before their ensemble — and a typo fails at
// flag time with the member's own error, not mid-sweep as a generic
// nil-endpoint failure.
func RegisterEnsembleBackend(spec string) (string, error) {
	if _, err := NewPanel(spec, DefaultModelSeed); err != nil {
		return "", err
	}
	name := "ensemble:" + spec
	backendRegistry.Lock()
	defer backendRegistry.Unlock()
	if _, ok := backendRegistry.factories[name]; !ok {
		backendRegistry.factories[name] = func(seed uint64) judge.LLM {
			p, err := NewPanel(spec, seed)
			if err != nil {
				return nil
			}
			return p
		}
	}
	return name, nil
}

func init() {
	RegisterBackend(DefaultBackend, func(seed uint64) judge.LLM { return model.New(seed) })
	RegisterBackendScheme("remote", func(addr string, seed uint64) judge.LLM { return remote.New(addr) })
	// "fleet:addr1,addr2,..." routes prompts across a replica set by
	// consistent hashing with health-aware failover (internal/fleet).
	RegisterBackendScheme("fleet", func(addrs string, seed uint64) judge.LLM {
		rt, err := fleetRouter(addrs)
		if err != nil {
			return nil
		}
		return rt
	})
	// "ensemble:a+b+c[:strategy]" composes registered backends into a
	// voting panel; the scheme contract reports construction failures
	// as a nil endpoint, which NewBackend turns into an error (use
	// NewPanel or RegisterEnsembleBackend for the detailed message).
	RegisterBackendScheme("ensemble", func(spec string, seed uint64) judge.LLM {
		p, err := NewPanel(spec, seed)
		if err != nil {
			return nil
		}
		return p
	})
}

// NewModel returns the simulated deepseek-coder-33B-instruct endpoint.
//
// Deprecated: construct endpoints through the backend registry
// (NewBackend / WithBackend) instead.
func NewModel(seed uint64) judge.LLM { return model.New(seed) }
