package llm4vv

import (
	"testing"

	"repro/internal/probe"
	"repro/internal/spec"
)

// TestShapeRobustAcrossSuiteSeeds guards against seed-overfitting: the
// paper's qualitative findings must hold when the corpus and probing
// seeds change, not just for the published seeds.
func TestShapeRobustAcrossSuiteSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range []uint64{101, 202, 303} {
		spec1 := PartOneSpec(spec.OpenACC)
		spec1.Seed = seed
		s, err := RunDirectProbing(spec1, DefaultModelSeed)
		if err != nil {
			t.Fatal(err)
		}
		if a := s.Accuracy(); a < 0.48 || a > 0.66 {
			t.Errorf("seed %d: ACC direct accuracy %.3f outside robust band", seed, a)
		}
		if s.Bias() < 0.5 {
			t.Errorf("seed %d: ACC direct bias %.3f lost its strong positive skew", seed, s.Bias())
		}

		spec2 := PartOneSpec(spec.OpenMP)
		spec2.Seed = seed
		s2, err := RunDirectProbing(spec2, DefaultModelSeed)
		if err != nil {
			t.Fatal(err)
		}
		if a := s2.PerIssue[probe.IssueRandom].Accuracy(); a > 0.25 {
			t.Errorf("seed %d: OMP random-code blind spot vanished (%.2f)", seed, a)
		}
		// The direct judge's cross-dialect ordering (ACC > OMP).
		if s.Accuracy() <= s2.Accuracy() {
			t.Errorf("seed %d: ACC direct (%.3f) should beat OMP direct (%.3f)",
				seed, s.Accuracy(), s2.Accuracy())
		}
	}
}

// TestShapeRobustAcrossModelSeeds: the findings must also survive
// different judge sampling seeds (the coin flips, not the suites).
func TestShapeRobustAcrossModelSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, modelSeed := range []uint64{1, 99} {
		r, err := RunPartTwo(PartTwoSpec(spec.OpenMP).Scaled(2), modelSeed)
		if err != nil {
			t.Fatal(err)
		}
		if r.Pipeline1.Accuracy() < 0.85 {
			t.Errorf("model seed %d: OMP pipeline accuracy %.3f below robust band",
				modelSeed, r.Pipeline1.Accuracy())
		}
		if r.LLMJ1.Accuracy() <= r.Direct.Accuracy() {
			t.Errorf("model seed %d: agent judge (%.3f) lost to direct (%.3f)",
				modelSeed, r.LLMJ1.Accuracy(), r.Direct.Accuracy())
		}
		if r.LLMJ1.Bias() < 0.3 {
			t.Errorf("model seed %d: agent permissive bias %.3f collapsed", modelSeed, r.LLMJ1.Bias())
		}
	}
}
