package llm4vv

// Tests for the panel experiment: ensemble judging end to end through
// the public API — determinism, the remote-daemon parity bar, and the
// resume guarantee that a finished panel run re-judges zero files
// while reproducing its agreement metrics byte-identically.

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ensemble"
	"repro/internal/model"
	"repro/internal/server"
	"repro/internal/spec"
	"repro/internal/store"
)

func panelParams(d ...spec.Dialect) ExperimentParams {
	return ExperimentParams{Dialects: d, Scale: 8}
}

func TestPanelExperimentDeterministic(t *testing.T) {
	run := func() string {
		r := newTestRunner(t)
		res, err := RunExperiment(context.Background(), r, "panel",
			panelParams(spec.OpenACC, spec.OpenMP))
		if err != nil {
			t.Fatal(err)
		}
		return res.Report()
	}
	first, second := run(), run()
	if first != second {
		t.Errorf("panel reports diverged across identical runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	for _, want := range []string{"Fleiss' kappa", "Pairwise agreement matrix", "deepseek-sim#2", "strategy majority"} {
		if !strings.Contains(first, want) {
			t.Errorf("panel report missing %q", want)
		}
	}
}

// TestPanelMembersDiverge: the panel's three seats derive distinct
// member seeds, so the judges genuinely disagree somewhere — a panel
// of echoes would make every agreement metric trivially 1.
func TestPanelMembersDiverge(t *testing.T) {
	r := newTestRunner(t)
	res, err := RunExperiment(context.Background(), r, "panel", panelParams(spec.OpenACC))
	if err != nil {
		t.Fatal(err)
	}
	pr := res.(*PanelScenarioResult).Results[spec.OpenACC]
	if len(pr.Members) != 3 {
		t.Fatalf("default panel has %d members, want 3", len(pr.Members))
	}
	if pr.Agreement.Kappa >= 0.999 {
		t.Errorf("kappa = %v: member seeds did not diverge", pr.Agreement.Kappa)
	}
	if pr.Agreement.Items == 0 || pr.Panel.Total == 0 {
		t.Error("panel judged zero files")
	}
}

// TestPanelViaRemoteParity is the acceptance bar: the panel
// experiment through a daemon serving the same ensemble is
// byte-identical to in-process, because the daemon's responses carry
// the member votes verbatim.
func TestPanelViaRemoteParity(t *testing.T) {
	memberSpec := DefaultBackend + "+" + DefaultBackend + "+" + DefaultBackend
	panel, err := NewPanel(memberSpec, DefaultModelSeed)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{LLM: panel, Backend: "ensemble:" + memberSpec, Seed: DefaultModelSeed})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	remoteName := RegisterRemoteBackend(strings.TrimPrefix(ts.URL, "http://"))
	defer func() {
		// Deregister so later compare sweeps do not dial a daemon that
		// died with this test.
		backendRegistry.Lock()
		delete(backendRegistry.factories, remoteName)
		backendRegistry.Unlock()
	}()

	local := newTestRunner(t)
	lres, err := RunExperiment(context.Background(), local, "panel", panelParams(spec.OpenACC))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRunner(WithBackend(remoteName))
	if err != nil {
		t.Fatal(err)
	}
	rres, err := RunExperiment(context.Background(), rr, "panel", panelParams(spec.OpenACC))
	if err != nil {
		t.Fatal(err)
	}
	if lres.Report() != rres.Report() {
		t.Errorf("panel report diverged through the daemon:\n--- local ---\n%s\n--- remote ---\n%s",
			lres.Report(), rres.Report())
	}
	if st := srv.Stats(); st.EndpointPrompts == 0 {
		t.Error("remote panel run never reached the daemon's endpoint")
	}
}

// TestPanelRemoteSingleJudgeErrors: a daemon fronting a plain judge
// cannot supply votes; the experiment must say so, not mis-score.
func TestPanelRemoteSingleJudgeErrors(t *testing.T) {
	srv := server.New(server.Config{LLM: model.New(DefaultModelSeed), Backend: DefaultBackend, Seed: DefaultModelSeed})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	r, err := NewRunner(WithBackend("remote:" + strings.TrimPrefix(ts.URL, "http://")))
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunExperiment(context.Background(), r, "panel", panelParams(spec.OpenACC))
	if err == nil || !strings.Contains(err.Error(), "single-judge") {
		t.Errorf("panel over a single-judge daemon returned %v, want a single-judge error", err)
	}
}

// TestPanelResumeRejudgesNothing: a finished panel run resumed under
// the same configuration loads every verdict and vote from the store
// — zero prompts reach any member — and reproduces the report
// byte-identically, agreement metrics included.
func TestPanelResumeRejudgesNothing(t *testing.T) {
	name, counter := registerCounting(t)
	path := filepath.Join(t.TempDir(), "panel.jsonl")

	run := func(resume bool) string {
		r, err := NewRunner(WithBackend(name), WithStore(path), WithResume(resume))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunExperiment(context.Background(), r, "panel", panelParams(spec.OpenACC))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		return res.Report()
	}
	first := run(false)
	judged := counter.n.Load()
	if judged == 0 {
		t.Fatal("first panel run judged nothing")
	}
	resumed := run(true)
	if resumed != first {
		t.Errorf("resumed panel report diverged:\n--- first ---\n%s\n--- resumed ---\n%s", first, resumed)
	}
	if got := counter.n.Load(); got != judged {
		t.Errorf("resumed run re-judged: prompts grew %d -> %d", judged, got)
	}

	// The stored records carry the votes that make this possible.
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recs := st.Records(panelPhase, "ensemble:"+name+"+"+name+"+"+name, DefaultModelSeed)
	if len(recs) == 0 {
		t.Fatal("no panel records stored")
	}
	for _, rec := range recs {
		if _, votes, err := ensemble.DecodeVotes(rec.Votes); err != nil || len(votes) != 3 {
			t.Fatalf("stored record %s has bad votes %q: %v", rec.Name, rec.Votes, err)
		}
	}
}

// TestPanelWeightedCalibratesFromStore: under the weighted strategy a
// second run picks up calibration weights from the first run's
// stored votes — and, fully resumed, still reproduces the report.
func TestPanelWeightedCalibratesFromStore(t *testing.T) {
	name, counter := registerCounting(t)
	path := filepath.Join(t.TempDir(), "panel.jsonl")
	memberSpec := name + "+" + name + "+" + name + ":weighted"

	run := func(resume bool) string {
		r, err := NewRunner(WithBackend(name), WithPanel(memberSpec),
			WithStore(path), WithResume(resume))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunExperiment(context.Background(), r, "panel", panelParams(spec.OpenACC))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		return res.Report()
	}
	first := run(false)
	if !strings.Contains(first, "strategy weighted") {
		t.Errorf("weighted panel did not report its strategy:\n%s", first)
	}
	judged := counter.n.Load()
	resumed := run(true)
	if resumed != first {
		t.Error("resumed weighted panel report diverged")
	}
	if got := counter.n.Load(); got != judged {
		t.Errorf("resumed weighted run re-judged: prompts grew %d -> %d", judged, got)
	}
}
